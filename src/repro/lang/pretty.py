"""Pretty printer for programs and atomic commands."""

from __future__ import annotations

from repro.lang.ast import (
    Assign,
    CallProc,
    AssignNull,
    Atom,
    AtomicCommand,
    Choice,
    Invoke,
    LoadField,
    LoadGlobal,
    New,
    Observe,
    Program,
    Seq,
    Skip,
    Star,
    StoreField,
    StoreGlobal,
    ThreadStart,
)


def pretty_command(command: AtomicCommand) -> str:
    """Render one atomic command in the concrete syntax of the parser."""
    if isinstance(command, New):
        return f"{command.lhs} = new {command.site}"
    if isinstance(command, Assign):
        return f"{command.lhs} = {command.rhs}"
    if isinstance(command, AssignNull):
        return f"{command.lhs} = null"
    if isinstance(command, LoadGlobal):
        return f"{command.lhs} = ${command.glob}"
    if isinstance(command, StoreGlobal):
        return f"${command.glob} = {command.rhs}"
    if isinstance(command, LoadField):
        return f"{command.lhs} = {command.base}.{command.field}"
    if isinstance(command, StoreField):
        return f"{command.base}.{command.field} = {command.rhs}"
    if isinstance(command, Invoke):
        return f"{command.base}.{command.method}()"
    if isinstance(command, ThreadStart):
        return f"start({command.var})"
    if isinstance(command, Observe):
        return f"observe {command.label}"
    if isinstance(command, CallProc):
        return f"call {command.callee}"
    raise TypeError(f"not an atomic command: {command!r}")


def pretty_program(program: Program, indent: int = 0) -> str:
    """Render a structured program, one construct per line."""
    pad = "  " * indent
    if isinstance(program, Skip):
        return f"{pad}skip"
    if isinstance(program, Atom):
        return f"{pad}{pretty_command(program.command)}"
    if isinstance(program, Seq):
        return (
            pretty_program(program.first, indent)
            + "\n"
            + pretty_program(program.second, indent)
        )
    if isinstance(program, Choice):
        return (
            f"{pad}choice {{\n"
            + pretty_program(program.left, indent + 1)
            + f"\n{pad}}} or {{\n"
            + pretty_program(program.right, indent + 1)
            + f"\n{pad}}}"
        )
    if isinstance(program, Star):
        return (
            f"{pad}loop {{\n" + pretty_program(program.body, indent + 1) + f"\n{pad}}}"
        )
    raise TypeError(f"not a program node: {program!r}")
