"""The paper's Section 3.1 imperative language.

A program is built from atomic commands using sequential composition,
non-deterministic choice, and iteration (Kleene star).  Client analyses
interpret the atomic commands; the structured program is lowered to a
control-flow graph (:mod:`repro.lang.cfg`) for fixpoint solving, and its
finite traces can be enumerated (:mod:`repro.lang.traces`) for testing.
"""

from repro.lang.ast import (
    Assign,
    CallProc,
    AssignNull,
    Atom,
    AtomicCommand,
    Choice,
    Invoke,
    LoadField,
    LoadGlobal,
    New,
    Observe,
    Program,
    Seq,
    Skip,
    Star,
    StoreField,
    StoreGlobal,
    ThreadStart,
    atoms_of,
    choice,
    seq,
)
from repro.lang.cfg import Cfg, CfgEdge, build_cfg
from repro.lang.parser import ParseError, parse_program
from repro.lang.pretty import pretty_command, pretty_program
from repro.lang.traces import enumerate_traces, trace_count
from repro.lang.universe import Universe, collect_universe

__all__ = [
    "Assign",
    "AssignNull",
    "Atom",
    "AtomicCommand",
    "CallProc",
    "Cfg",
    "CfgEdge",
    "Choice",
    "Invoke",
    "LoadField",
    "LoadGlobal",
    "New",
    "Observe",
    "ParseError",
    "Program",
    "Seq",
    "Skip",
    "Star",
    "StoreField",
    "StoreGlobal",
    "ThreadStart",
    "Universe",
    "atoms_of",
    "build_cfg",
    "choice",
    "collect_universe",
    "enumerate_traces",
    "parse_program",
    "pretty_command",
    "pretty_program",
    "seq",
    "trace_count",
]
