"""Trace semantics of programs (Figure 2 of the paper).

``trace(s)`` is the set of finite sequences of atomic commands one
execution of ``s`` may take.  For ``Star`` the set is infinite, so the
enumeration here is bounded by the number of loop unrollings; this is
exactly what the test oracles need (Lemma 1 is checked on bounded
unrollings, and the collecting engine's witness traces are always
finite).
"""

from __future__ import annotations

from typing import Iterator

from repro.lang.ast import Atom, Choice, Program, Seq, Skip, Star, Trace


def enumerate_traces(program: Program, max_unroll: int = 2) -> Iterator[Trace]:
    """Enumerate the traces of ``program``.

    Loops are unrolled at most ``max_unroll`` times, so the result is an
    under-approximation of ``trace(s)`` for programs containing ``Star``
    and exact otherwise.  Traces are yielded in a deterministic order;
    duplicates (possible via overlapping choice branches) are preserved
    to mirror the paper's multiset-free set semantics only up to
    enumeration — use ``set()`` at call sites needing set semantics.
    """
    if isinstance(program, Skip):
        yield ()
    elif isinstance(program, Atom):
        yield (program.command,)
    elif isinstance(program, Seq):
        for left in enumerate_traces(program.first, max_unroll):
            for right in enumerate_traces(program.second, max_unroll):
                yield left + right
    elif isinstance(program, Choice):
        yield from enumerate_traces(program.left, max_unroll)
        yield from enumerate_traces(program.right, max_unroll)
    elif isinstance(program, Star):
        body_traces = list(enumerate_traces(program.body, max_unroll))
        rounds: list[Trace] = [()]
        yield ()
        for _ in range(max_unroll):
            rounds = [prefix + body for prefix in rounds for body in body_traces]
            yield from rounds
    else:
        raise TypeError(f"not a program node: {program!r}")


def trace_count(program: Program, max_unroll: int = 2) -> int:
    """Number of traces ``enumerate_traces`` yields (for tests and stats)."""
    return sum(1 for _ in enumerate_traces(program, max_unroll))
