"""Post-hoc trace analysis: validation and per-phase summaries.

``repro trace summarize FILE`` renders, from a recorded JSONL trace,
the decomposition the paper's Table 3 timing columns are built from:
how much wall-clock the search spent in the forward fixpoint runs
(+ counterexample extraction), the backward meta-analysis, and
next-abstraction synthesis (MinCostSAT).  The summary also
cross-checks the phase totals against the per-query ``time_seconds``
recorded in ``query_resolved`` events — the two are independent
measurements of the same work, so their ratio (*coverage*) is a
built-in sanity check on the instrumentation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.events import PHASES, SPAN_END, SPAN_START, validate_events

__all__ = [
    "TraceSummary",
    "load_trace",
    "phase_durations",
    "render_summary",
    "summarize_trace",
]


def load_trace(path: str) -> List[dict]:
    """Read a JSONL trace file into a record list."""
    records: List[dict] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: not valid JSON ({error})"
                ) from None
    return records


@dataclass
class _SpanInfo:
    name: str
    phase: Optional[str]
    parent: Optional[int]
    start: float
    end: Optional[float] = None

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0


def _spans(records: Sequence[dict]) -> Dict[int, _SpanInfo]:
    spans: Dict[int, _SpanInfo] = {}
    for record in records:
        rtype = record.get("type")
        if rtype == SPAN_START:
            spans[record["id"]] = _SpanInfo(
                name=record.get("name", "?"),
                phase=record.get("phase"),
                parent=record.get("parent"),
                start=record["t"],
            )
        elif rtype == SPAN_END:
            info = spans.get(record.get("id"))
            if info is not None:
                info.end = record["t"]
    return spans


def phase_durations(records: Sequence[dict]) -> Dict[str, float]:
    """Wall-clock seconds per phase, summed over phased spans.

    A phased span's contribution excludes the time of its *phased*
    descendants (each instant is attributed to the innermost phased
    span covering it), so wrapping phased work in a coarser phased
    span never double-counts.
    """
    spans = _spans(records)
    child_phased: Dict[int, float] = {}
    for info in spans.values():
        if info.phase is not None and info.parent is not None:
            child_phased[info.parent] = (
                child_phased.get(info.parent, 0.0) + info.duration
            )
    totals = {phase: 0.0 for phase in PHASES}
    for span_id, info in spans.items():
        if info.phase is not None:
            exclusive = info.duration - child_phased.get(span_id, 0.0)
            totals[info.phase] = totals.get(info.phase, 0.0) + max(0.0, exclusive)
    return totals


@dataclass
class TraceSummary:
    """Everything ``repro trace summarize`` renders."""

    phase_seconds: Dict[str, float]
    span_counts: Dict[str, int]
    span_seconds: Dict[str, float]
    queries: List[dict] = field(default_factory=list)
    metrics: List[dict] = field(default_factory=list)
    iterations: int = 0
    streams: int = 1

    @property
    def phase_total(self) -> float:
        return sum(self.phase_seconds.values())

    @property
    def query_time_total(self) -> float:
        return sum(q.get("time_seconds", 0.0) for q in self.queries)

    @property
    def coverage(self) -> Optional[float]:
        """phase_total / sum of per-query time_seconds (``None`` when
        the trace resolved no queries)."""
        total = self.query_time_total
        return self.phase_total / total if total else None


def summarize_trace(records: Sequence[dict]) -> TraceSummary:
    """Fold a validated record stream into a :class:`TraceSummary`."""
    spans = _spans(records)
    span_counts: Dict[str, int] = {}
    span_seconds: Dict[str, float] = {}
    for info in spans.values():
        span_counts[info.name] = span_counts.get(info.name, 0) + 1
        span_seconds[info.name] = span_seconds.get(info.name, 0.0) + info.duration
    queries = [
        dict(record.get("attrs", {}))
        for record in records
        if record.get("type") == "event" and record.get("name") == "query_resolved"
    ]
    # One row per counter name: eval traces carry one metric record per
    # (benchmark, analysis) pair, so sum them into suite-wide totals.
    by_name: Dict[str, Dict[str, int]] = {}
    for record in records:
        if record.get("type") != "metric":
            continue
        entry = by_name.setdefault(
            record["name"], {"name": record["name"], "hits": 0, "misses": 0}
        )
        entry["hits"] += record["hits"]
        entry["misses"] += record["misses"]
    metrics = [by_name[name] for name in sorted(by_name)]
    streams = {record.get("stream", 0) for record in records}
    return TraceSummary(
        phase_seconds=phase_durations(records),
        span_counts=span_counts,
        span_seconds=span_seconds,
        queries=queries,
        metrics=metrics,
        iterations=span_counts.get("iteration", 0),
        streams=max(len(streams), 1),
    )


def render_summary(summary: TraceSummary) -> str:
    """The ``repro trace summarize`` report."""
    lines: List[str] = []
    total = summary.phase_total
    lines.append("Per-phase wall-clock breakdown")
    for phase in PHASES:
        seconds = summary.phase_seconds.get(phase, 0.0)
        share = seconds / total if total else 0.0
        lines.append(f"  {phase:<10} {seconds:>10.4f}s  {share:>6.1%}")
    lines.append(f"  {'total':<10} {total:>10.4f}s")
    lines.append("")
    lines.append(
        f"iterations: {summary.iterations}"
        + (f"  (streams: {summary.streams})" if summary.streams > 1 else "")
    )
    if summary.queries:
        by_status: Dict[str, int] = {}
        for query in summary.queries:
            status = query.get("status", "?")
            by_status[status] = by_status.get(status, 0) + 1
        status_text = ", ".join(
            f"{count} {status}" for status, count in sorted(by_status.items())
        )
        lines.append(
            f"queries: {len(summary.queries)} resolved ({status_text}), "
            f"charged time {summary.query_time_total:.4f}s"
        )
        if summary.coverage is not None:
            lines.append(
                f"phase coverage: {summary.coverage:.1%} of charged query time"
            )
    if summary.metrics:
        lines.append("")
        lines.append("cache counters")
        for metric in summary.metrics:
            total_ops = metric["hits"] + metric["misses"]
            rate = metric["hits"] / total_ops if total_ops else 0.0
            lines.append(
                f"  {metric['name']:<24} {metric['hits']:>8} hits "
                f"{metric['misses']:>8} misses  {rate:>6.1%}"
            )
    return "\n".join(lines)


def validate_trace(records: Sequence[dict]) -> List[str]:
    """Schema-validate a record stream (see
    :func:`repro.obs.events.validate_events`)."""
    return validate_events(records)
