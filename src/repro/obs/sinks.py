"""Trace sinks: where emitted records go.

Four bundled sinks cover the intended deployment modes:

* :class:`NullSink` — swallow everything.  Used to measure the cost of
  *active* instrumentation alone (``bench_smoke`` records the delta);
  note that the even cheaper default is *no* sink installed at all, in
  which case the instrumentation points never construct records.
* :class:`MemorySink` — collect records in a list; the test sink, and
  the capture buffer behind post-hoc transcripts and parallel-worker
  trace collection.
* :class:`JsonlSink` — one compact JSON record per line, schema-stamped
  by the leading ``trace_header``; the artifact format consumed by
  ``repro trace validate / summarize / transcript``.
* :class:`TtySink` — a live, human-oriented progress feed on stderr
  (one line per CEGAR iteration and per resolved query).
"""

from __future__ import annotations

import json
import sys
from typing import IO, List, Optional

__all__ = ["Sink", "NullSink", "MemorySink", "JsonlSink", "TtySink", "MultiSink"]


class Sink:
    """A consumer of trace records (plain dicts; see
    :mod:`repro.obs.events` for the shapes)."""

    def emit(self, record: dict) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources; further ``emit`` calls are
        undefined."""


class NullSink(Sink):
    """Accept and discard every record."""

    def emit(self, record: dict) -> None:
        pass


class MemorySink(Sink):
    """Collect records in :attr:`events` (in emission order)."""

    def __init__(self):
        self.events: List[dict] = []

    def emit(self, record: dict) -> None:
        self.events.append(record)


class JsonlSink(Sink):
    """Write records as JSON lines to ``path`` (or an open handle)."""

    def __init__(self, path: str, handle: Optional[IO[str]] = None):
        self.path = path
        self._handle = handle if handle is not None else open(path, "w")
        self._owns_handle = handle is None

    def emit(self, record: dict) -> None:
        self._handle.write(json.dumps(record, separators=(",", ":")))
        self._handle.write("\n")

    def close(self) -> None:
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()


class TtySink(Sink):
    """Render a live progress feed from the event stream.

    Prints one line per finished CEGAR iteration (abstraction cost,
    group size, whether the forward run was served from cache) and one
    per resolved query; everything else is ignored.
    """

    def __init__(self, stream: Optional[IO[str]] = None):
        self.stream = stream if stream is not None else sys.stderr
        self._iteration_starts = {}

    def emit(self, record: dict) -> None:
        rtype = record.get("type")
        if rtype == "span_start" and record.get("name") == "iteration":
            self._iteration_starts[record["id"]] = record
        elif rtype == "span_end" and record.get("id") in self._iteration_starts:
            start = self._iteration_starts.pop(record["id"])
            attrs = {**start.get("attrs", {}), **record.get("attrs", {})}
            seconds = record["t"] - start["t"]
            cost = attrs.get("abstraction_cost")
            self._line(
                f"iteration {attrs.get('round', '?')}: "
                f"group={attrs.get('group_size', '?')} "
                f"cost={'-' if cost is None else cost} "
                f"proven={attrs.get('proven', 0)} "
                f"{'cached ' if attrs.get('cached') else ''}"
                f"({seconds:.3f}s)"
            )
        elif rtype == "event" and record.get("name") == "query_resolved":
            attrs = record.get("attrs", {})
            self._line(
                f"query {attrs.get('query', '?')}: "
                f"{attrs.get('status', '?').upper()} "
                f"after {attrs.get('iterations', '?')} iterations "
                f"({attrs.get('time_seconds', 0.0):.3f}s)"
            )

    def _line(self, text: str) -> None:
        self.stream.write(text + "\n")
        self.stream.flush()


class MultiSink(Sink):
    """Fan every record out to several sinks."""

    def __init__(self, sinks):
        self.sinks = list(sinks)

    def emit(self, record: dict) -> None:
        for sink in self.sinks:
            sink.emit(record)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
