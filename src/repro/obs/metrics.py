"""Cache-counter metrics registry and serving-layer instruments.

Before this layer existed, every cache's hit/miss counters were
hand-threaded through ``stats.py -> harness.py -> export.py ->
tables.py`` — each new cache meant touching four files and each reader
risked double-counting (summing a cache's own counters *and* a copy
taken elsewhere).  The registry inverts the flow: a cache registers
itself once, at construction, under a hierarchical name
(``"forward_run"``, ``"wp_memo.typestate"``, ``"dispatch.escape"``,
...), and keeps sole ownership of its counters.  Readers *pull*: a
snapshot reads every live source exactly once, so there is a single
source of truth by construction.

Registration is weak — the registry never keeps a cache alive — and
scoped: the evaluation harness installs a fresh registry per run
(:func:`scoped_registry`) so one evaluation's totals never bleed into
the next, while ad-hoc usage (tests, the CLI solvers) lands in the
process-wide default registry.

The serving layer adds *instruments* on the same pull model:
:class:`Counter`, :class:`Gauge`, and fixed-bucket :class:`Histogram`
objects with optional label dimensions.  An instrument registers
weakly (:meth:`MetricsRegistry.register_instrument`) and is scraped by
the Prometheus exporter (:mod:`repro.obs.export`); its owner holds the
only strong reference, so a collected owner's metrics drop out of
scrapes exactly like a collected cache's counters do.
"""

from __future__ import annotations

import bisect
import weakref
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.stats import CacheCounters

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "current_registry",
    "quantile_from_buckets",
    "register_cache",
    "register_instrument",
    "scoped_registry",
]

#: Reads one source object into counters.
Reader = Callable[[object], CacheCounters]


def _hits_misses(source: object) -> CacheCounters:
    return CacheCounters(hits=source.hits, misses=source.misses)


#: Default latency buckets (seconds).  The low end is finer than the
#: Prometheus client defaults because warm replay-tier solves finish in
#: well under a millisecond.
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _label_key(labelnames: Tuple[str, ...], labels: Dict[str, object]):
    if set(labels) != set(labelnames):
        raise ValueError(
            f"expected labels {list(labelnames)}, got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class Counter:
    """A monotonically increasing count, optionally split by labels."""

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(self.labelnames, labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels) -> float:
        return self._values.get(_label_key(self.labelnames, labels), 0)

    def samples(self) -> List[Tuple[Dict[str, str], float]]:
        """``(labels, value)`` pairs in deterministic label order."""
        return [
            (dict(zip(self.labelnames, key)), value)
            for key, value in sorted(self._values.items())
        ]


class Gauge:
    """A settable value; may also read through a callback at scrape
    time (e.g. a store hit rate computed from live counters)."""

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}
        self._functions: Dict[Tuple[str, ...], Callable[[], float]] = {}

    def set(self, value: float, **labels) -> None:
        self._values[_label_key(self.labelnames, labels)] = value

    def inc(self, amount: float = 1, **labels) -> None:
        key = _label_key(self.labelnames, labels)
        self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels) -> None:
        self.inc(-amount, **labels)

    def set_function(self, fn: Callable[[], float], **labels) -> None:
        """Read ``fn()`` at scrape time instead of a stored value."""
        self._functions[_label_key(self.labelnames, labels)] = fn

    def value(self, **labels) -> float:
        key = _label_key(self.labelnames, labels)
        if key in self._functions:
            return float(self._functions[key]())
        return self._values.get(key, 0)

    def samples(self) -> List[Tuple[Dict[str, str], float]]:
        keys = sorted(set(self._values) | set(self._functions))
        out = []
        for key in keys:
            if key in self._functions:
                value = float(self._functions[key]())
            else:
                value = self._values[key]
            out.append((dict(zip(self.labelnames, key)), value))
        return out


class _HistogramSeries:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int):
        self.counts = [0] * n_buckets
        self.sum = 0.0
        self.count = 0


class Histogram:
    """Fixed-bucket distribution (Prometheus ``histogram`` semantics:
    cumulative ``le`` buckets plus ``_sum`` and ``_count``)."""

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        labelnames: Sequence[str] = (),
    ):
        self.name = name
        self.help = help
        self.bounds = tuple(sorted(buckets))
        if not self.bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self.labelnames = tuple(labelnames)
        self._series: Dict[Tuple[str, ...], _HistogramSeries] = {}

    def observe(self, value: float, **labels) -> None:
        key = _label_key(self.labelnames, labels)
        series = self._series.get(key)
        if series is None:
            # one extra bucket catches values above the last bound (+Inf)
            series = self._series[key] = _HistogramSeries(len(self.bounds) + 1)
        series.counts[bisect.bisect_left(self.bounds, value)] += 1
        series.sum += value
        series.count += 1

    def samples(self) -> List[Tuple[Dict[str, str], _HistogramSeries]]:
        return [
            (dict(zip(self.labelnames, key)), series)
            for key, series in sorted(self._series.items())
        ]

    def merged(self) -> _HistogramSeries:
        """One series summing every label combination."""
        total = _HistogramSeries(len(self.bounds) + 1)
        for series in self._series.values():
            for i, c in enumerate(series.counts):
                total.counts[i] += c
            total.sum += series.sum
            total.count += series.count
        return total

    def quantile(self, q: float, **labels) -> Optional[float]:
        """Estimated ``q``-quantile (across all labels when none are
        given) by linear interpolation within the containing bucket."""
        if labels:
            series = self._series.get(_label_key(self.labelnames, labels))
            if series is None:
                return None
        else:
            series = self.merged()
        return quantile_from_buckets(self.bounds, series.counts, q)


def quantile_from_buckets(
    bounds: Sequence[float], counts: Sequence[int], q: float
) -> Optional[float]:
    """Estimate the ``q``-quantile from per-bucket counts (the bucket
    list has one more entry than ``bounds``: the overflow bucket).
    Linear interpolation inside the containing bucket, matching what
    ``histogram_quantile`` does in PromQL; values in the overflow
    bucket clamp to the largest finite bound."""
    if not 0 <= q <= 1:
        raise ValueError(f"quantile out of range: {q}")
    total = sum(counts)
    if total == 0:
        return None
    rank = q * total
    cumulative = 0
    for i, count in enumerate(counts):
        if count == 0:
            continue
        if cumulative + count >= rank:
            if i >= len(bounds):
                return float(bounds[-1])
            lower = bounds[i - 1] if i > 0 else 0.0
            upper = bounds[i]
            within = max(0.0, rank - cumulative) / count
            return lower + (upper - lower) * within
        cumulative += count
    return float(bounds[-1])


class MetricsRegistry:
    """Named collection of weakly-referenced counter sources."""

    def __init__(self):
        self._sources: Dict[str, List[Tuple[weakref.ref, Reader]]] = {}
        self._instruments: List[weakref.ref] = []

    def register(
        self, name: str, source: object, reader: Reader = _hits_misses
    ) -> None:
        """Register ``source`` under ``name``.  ``reader`` extracts a
        :class:`CacheCounters` from the live object (default: its
        ``hits``/``misses`` attributes)."""
        self._sources.setdefault(name, []).append((weakref.ref(source), reader))

    def counters(self, prefix: str) -> CacheCounters:
        """Summed counters of every live source whose name is
        ``prefix`` or starts with ``prefix + "."``."""
        total = CacheCounters()
        dotted = prefix + "."
        for name, entries in self._sources.items():
            if name == prefix or name.startswith(dotted):
                for ref, reader in entries:
                    source = ref()
                    if source is not None:
                        total += reader(source)
        return total

    def snapshot(self) -> Dict[str, CacheCounters]:
        """Per-name totals over live sources (dead entries pruned)."""
        out: Dict[str, CacheCounters] = {}
        for name, entries in sorted(self._sources.items()):
            live = [(ref, reader) for ref, reader in entries if ref() is not None]
            self._sources[name] = live
            if live:
                total = CacheCounters()
                for ref, reader in live:
                    source = ref()
                    if source is not None:
                        total += reader(source)
                out[name] = total
        return out

    def register_instrument(self, instrument):
        """Weakly register a :class:`Counter` / :class:`Gauge` /
        :class:`Histogram` for scraping.  The caller keeps the only
        strong reference; a collected owner's instruments silently
        drop out of :meth:`instruments`."""
        self._instruments.append(weakref.ref(instrument))
        return instrument

    def instruments(self) -> List[object]:
        """Live instruments in registration order (dead refs pruned)."""
        live = []
        refs = []
        for ref in self._instruments:
            obj = ref()
            if obj is not None:
                live.append(obj)
                refs.append(ref)
        self._instruments = refs
        return live

    def source_count(self, prefix: str) -> int:
        """How many live sources match ``prefix`` (diagnostics)."""
        count = 0
        dotted = prefix + "."
        for name, entries in self._sources.items():
            if name == prefix or name.startswith(dotted):
                count += sum(1 for ref, _ in entries if ref() is not None)
        return count


#: The process-wide fallback registry.
_DEFAULT = MetricsRegistry()

#: The installed registry (module-level; the evaluation parallelises
#: across processes, so no thread-local is needed).
_CURRENT: MetricsRegistry = _DEFAULT


def current_registry() -> MetricsRegistry:
    """The registry new caches register with."""
    return _CURRENT


def register_cache(
    name: str, source: object, reader: Reader = _hits_misses
) -> None:
    """Register ``source`` with the current registry (the call every
    cache constructor makes)."""
    _CURRENT.register(name, source, reader)


def register_instrument(instrument):
    """Register an instrument with the current registry (weakly — the
    caller must keep the instrument alive)."""
    return _CURRENT.register_instrument(instrument)


class scoped_registry:
    """Install a fresh (or given) registry for a ``with`` block.

    The evaluation harness wraps each run in one of these so the
    counters it reports cover exactly the caches constructed during
    that run."""

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._previous: Optional[MetricsRegistry] = None

    def __enter__(self) -> MetricsRegistry:
        global _CURRENT
        self._previous = _CURRENT
        _CURRENT = self.registry
        return self.registry

    def __exit__(self, *exc) -> bool:
        global _CURRENT
        _CURRENT = self._previous
        return False
