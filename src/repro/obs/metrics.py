"""Cache-counter metrics registry.

Before this layer existed, every cache's hit/miss counters were
hand-threaded through ``stats.py -> harness.py -> export.py ->
tables.py`` — each new cache meant touching four files and each reader
risked double-counting (summing a cache's own counters *and* a copy
taken elsewhere).  The registry inverts the flow: a cache registers
itself once, at construction, under a hierarchical name
(``"forward_run"``, ``"wp_memo.typestate"``, ``"dispatch.escape"``,
...), and keeps sole ownership of its counters.  Readers *pull*: a
snapshot reads every live source exactly once, so there is a single
source of truth by construction.

Registration is weak — the registry never keeps a cache alive — and
scoped: the evaluation harness installs a fresh registry per run
(:func:`scoped_registry`) so one evaluation's totals never bleed into
the next, while ad-hoc usage (tests, the CLI solvers) lands in the
process-wide default registry.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.stats import CacheCounters

__all__ = [
    "MetricsRegistry",
    "current_registry",
    "register_cache",
    "scoped_registry",
]

#: Reads one source object into counters.
Reader = Callable[[object], CacheCounters]


def _hits_misses(source: object) -> CacheCounters:
    return CacheCounters(hits=source.hits, misses=source.misses)


class MetricsRegistry:
    """Named collection of weakly-referenced counter sources."""

    def __init__(self):
        self._sources: Dict[str, List[Tuple[weakref.ref, Reader]]] = {}

    def register(
        self, name: str, source: object, reader: Reader = _hits_misses
    ) -> None:
        """Register ``source`` under ``name``.  ``reader`` extracts a
        :class:`CacheCounters` from the live object (default: its
        ``hits``/``misses`` attributes)."""
        self._sources.setdefault(name, []).append((weakref.ref(source), reader))

    def counters(self, prefix: str) -> CacheCounters:
        """Summed counters of every live source whose name is
        ``prefix`` or starts with ``prefix + "."``."""
        total = CacheCounters()
        dotted = prefix + "."
        for name, entries in self._sources.items():
            if name == prefix or name.startswith(dotted):
                for ref, reader in entries:
                    source = ref()
                    if source is not None:
                        total += reader(source)
        return total

    def snapshot(self) -> Dict[str, CacheCounters]:
        """Per-name totals over live sources (dead entries pruned)."""
        out: Dict[str, CacheCounters] = {}
        for name, entries in sorted(self._sources.items()):
            live = [(ref, reader) for ref, reader in entries if ref() is not None]
            self._sources[name] = live
            if live:
                total = CacheCounters()
                for ref, reader in live:
                    source = ref()
                    if source is not None:
                        total += reader(source)
                out[name] = total
        return out

    def source_count(self, prefix: str) -> int:
        """How many live sources match ``prefix`` (diagnostics)."""
        count = 0
        dotted = prefix + "."
        for name, entries in self._sources.items():
            if name == prefix or name.startswith(dotted):
                count += sum(1 for ref, _ in entries if ref() is not None)
        return count


#: The process-wide fallback registry.
_DEFAULT = MetricsRegistry()

#: The installed registry (module-level; the evaluation parallelises
#: across processes, so no thread-local is needed).
_CURRENT: MetricsRegistry = _DEFAULT


def current_registry() -> MetricsRegistry:
    """The registry new caches register with."""
    return _CURRENT


def register_cache(
    name: str, source: object, reader: Reader = _hits_misses
) -> None:
    """Register ``source`` with the current registry (the call every
    cache constructor makes)."""
    _CURRENT.register(name, source, reader)


class scoped_registry:
    """Install a fresh (or given) registry for a ``with`` block.

    The evaluation harness wraps each run in one of these so the
    counters it reports cover exactly the caches constructed during
    that run."""

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._previous: Optional[MetricsRegistry] = None

    def __enter__(self) -> MetricsRegistry:
        global _CURRENT
        self._previous = _CURRENT
        _CURRENT = self.registry
        return self.registry

    def __exit__(self, *exc) -> bool:
        global _CURRENT
        _CURRENT = self._previous
        return False
