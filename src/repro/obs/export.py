"""Prometheus text-format exporter for the metrics registry.

Renders everything a :class:`~repro.obs.metrics.MetricsRegistry` knows
— the serving instruments (counters, gauges, histograms) plus the
legacy cache hit/miss sources — in the Prometheus text exposition
format (version 0.0.4): ``# HELP`` / ``# TYPE`` comment lines followed
by one sample per line, histograms as cumulative ``_bucket{le=...}``
series with ``_sum`` and ``_count``.

The module also ships a deliberately small :func:`parse_prometheus`
for the consumers *inside* this repo (tests, ``repro top``, the serve
smoke script) — it understands exactly what :func:`render_prometheus`
emits, not the full exposition grammar.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_registry,
    quantile_from_buckets,
)

__all__ = [
    "histogram_from_samples",
    "parse_prometheus",
    "quantile_from_parsed",
    "render_prometheus",
]


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _labels_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if isinstance(value, int) or (
        isinstance(value, float) and value.is_integer()
    ):
        return str(int(value))
    return repr(float(value))


def _render_counter(lines: List[str], counter: Counter) -> None:
    if counter.help:
        lines.append(f"# HELP {counter.name} {counter.help}")
    lines.append(f"# TYPE {counter.name} counter")
    samples = counter.samples()
    if not samples:
        samples = [({}, 0.0)]
    for labels, value in samples:
        lines.append(
            f"{counter.name}{_labels_text(labels)} {_format_value(value)}"
        )


def _render_gauge(lines: List[str], gauge: Gauge) -> None:
    if gauge.help:
        lines.append(f"# HELP {gauge.name} {gauge.help}")
    lines.append(f"# TYPE {gauge.name} gauge")
    samples = gauge.samples()
    if not samples:
        samples = [({}, 0.0)]
    for labels, value in samples:
        lines.append(
            f"{gauge.name}{_labels_text(labels)} {_format_value(value)}"
        )


def _render_histogram(lines: List[str], hist: Histogram) -> None:
    if hist.help:
        lines.append(f"# HELP {hist.name} {hist.help}")
    lines.append(f"# TYPE {hist.name} histogram")
    samples = hist.samples()
    if not samples:
        samples = [({}, None)]
    for labels, series in samples:
        cumulative = 0
        counts = (
            series.counts if series is not None
            else [0] * (len(hist.bounds) + 1)
        )
        for bound, count in zip(hist.bounds, counts):
            cumulative += count
            bucket_labels = dict(labels)
            bucket_labels["le"] = _format_value(float(bound))
            lines.append(
                f"{hist.name}_bucket{_labels_text(bucket_labels)} {cumulative}"
            )
        cumulative += counts[-1]
        bucket_labels = dict(labels)
        bucket_labels["le"] = "+Inf"
        lines.append(
            f"{hist.name}_bucket{_labels_text(bucket_labels)} {cumulative}"
        )
        total_sum = series.sum if series is not None else 0.0
        total_count = series.count if series is not None else 0
        lines.append(
            f"{hist.name}_sum{_labels_text(labels)} "
            f"{_format_value(total_sum)}"
        )
        lines.append(f"{hist.name}_count{_labels_text(labels)} {total_count}")


def render_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """The registry as Prometheus text exposition.

    Instruments render natively; the legacy cache hit/miss sources
    render as two labelled counter families,
    ``repro_cache_hits_total{cache=...}`` and
    ``repro_cache_misses_total{cache=...}``.
    """
    registry = registry if registry is not None else current_registry()
    lines: List[str] = []
    for instrument in registry.instruments():
        if isinstance(instrument, Counter):
            _render_counter(lines, instrument)
        elif isinstance(instrument, Gauge):
            _render_gauge(lines, instrument)
        elif isinstance(instrument, Histogram):
            _render_histogram(lines, instrument)
    caches = registry.snapshot()
    if caches:
        lines.append(
            "# HELP repro_cache_hits_total Cache hits by registry name."
        )
        lines.append("# TYPE repro_cache_hits_total counter")
        for name, counters in caches.items():
            lines.append(
                f'repro_cache_hits_total{{cache="{_escape_label(name)}"}} '
                f"{counters.hits}"
            )
        lines.append(
            "# HELP repro_cache_misses_total Cache misses by registry name."
        )
        lines.append("# TYPE repro_cache_misses_total counter")
        for name, counters in caches.items():
            lines.append(
                f'repro_cache_misses_total{{cache="{_escape_label(name)}"}} '
                f"{counters.misses}"
            )
    return "\n".join(lines) + "\n"


#: A parsed exposition: sample name -> list of (labels, value).
Parsed = Dict[str, List[Tuple[Dict[str, str], float]]]


def _parse_labels(text: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        name = text[i:eq].strip().lstrip(",")
        assert text[eq + 1] == '"', f"malformed label value at {text[eq:]!r}"
        j = eq + 2
        value: List[str] = []
        while text[j] != '"':
            if text[j] == "\\":
                j += 1
                value.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(text[j], text[j])
                )
            else:
                value.append(text[j])
            j += 1
        labels[name] = "".join(value)
        i = j + 1
    return labels


def parse_prometheus(text: str) -> Parsed:
    """Parse text exposition back into ``{name: [(labels, value)]}``.

    Covers the subset :func:`render_prometheus` produces (which is the
    subset ``repro top`` and the tests need); comment lines are
    skipped.
    """
    parsed: Parsed = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        body, value_text = line.rsplit(" ", 1)
        if "{" in body:
            name, rest = body.split("{", 1)
            labels = _parse_labels(rest.rstrip("}"))
        else:
            name, labels = body, {}
        value = float("inf") if value_text == "+Inf" else float(value_text)
        parsed.setdefault(name, []).append((labels, value))
    return parsed


def histogram_from_samples(
    parsed: Parsed, name: str, **match_labels
) -> Optional[Tuple[List[float], List[int], int, float]]:
    """Reassemble one histogram from parsed exposition samples, summed
    across every label combination matching ``match_labels``.

    Returns ``(bounds, per_bucket_counts, count, sum)`` ready for
    :func:`~repro.obs.metrics.quantile_from_buckets`, or ``None`` if
    the histogram is absent.  ``per_bucket_counts`` are *de-cumulated*
    (one extra overflow entry past the last finite bound).
    """
    bucket_samples = parsed.get(name + "_bucket")
    if not bucket_samples:
        return None
    by_le: Dict[float, float] = {}
    for labels, value in bucket_samples:
        if any(labels.get(k) != str(v) for k, v in match_labels.items()):
            continue
        le = (
            float("inf") if labels["le"] == "+Inf" else float(labels["le"])
        )
        by_le[le] = by_le.get(le, 0.0) + value
    if not by_le:
        return None
    bounds = sorted(le for le in by_le if le != float("inf"))
    cumulative = [by_le[le] for le in bounds] + [by_le.get(float("inf"), 0.0)]
    counts = [int(cumulative[0])] + [
        int(cumulative[i] - cumulative[i - 1])
        for i in range(1, len(cumulative))
    ]
    total_count = 0
    total_sum = 0.0
    for labels, value in parsed.get(name + "_count", []):
        if all(labels.get(k) == str(v) for k, v in match_labels.items()):
            total_count += int(value)
    for labels, value in parsed.get(name + "_sum", []):
        if all(labels.get(k) == str(v) for k, v in match_labels.items()):
            total_sum += value
    return bounds, counts, total_count, total_sum


def quantile_from_parsed(
    parsed: Parsed, name: str, q: float, **match_labels
) -> Optional[float]:
    """Estimated ``q``-quantile of a scraped histogram (``None`` when
    absent or empty)."""
    assembled = histogram_from_samples(parsed, name, **match_labels)
    if assembled is None:
        return None
    bounds, counts, _count, _sum = assembled
    if not bounds:
        return None
    return quantile_from_buckets(bounds, counts, q)
