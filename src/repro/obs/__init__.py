"""Observability: structured tracing and metrics for the TRACER loop.

Sub-modules:

* :mod:`repro.obs.trace` — the span/event runtime the search loop is
  instrumented with (near-free when no sink is installed);
* :mod:`repro.obs.events` — the versioned trace-record schema,
  validation, and deterministic merging of parallel worker streams;
* :mod:`repro.obs.sinks` — where records go: no-op, in-memory, JSONL
  file, live TTY progress;
* :mod:`repro.obs.metrics` — the cache-counter registry (single
  source of truth for hit/miss statistics) plus labelled counters,
  gauges, and fixed-bucket histograms on the same pull model;
* :mod:`repro.obs.export` — the Prometheus text-format exporter over
  the registry (behind the daemon's ``metrics`` op and
  ``--metrics-out``);
* :mod:`repro.obs.summarize` — post-hoc trace analysis behind
  ``repro trace validate / summarize``;
* :mod:`repro.obs.aggregate` — the per-site flat profiler behind
  ``repro trace profile``.

See ``docs/OBSERVABILITY.md`` for the full story.
"""

from repro.obs.aggregate import (
    TraceProfile,
    profile_trace,
    render_profile,
)
from repro.obs.events import (
    PHASES,
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    merge_streams,
    validate_events,
)
from repro.obs.export import (
    parse_prometheus,
    render_prometheus,
)
from repro.obs.metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_registry,
    quantile_from_buckets,
    register_cache,
    register_instrument,
    scoped_registry,
)
from repro.obs.sinks import (
    JsonlSink,
    MemorySink,
    MultiSink,
    NullSink,
    Sink,
    TtySink,
)
from repro.obs.summarize import (
    TraceSummary,
    load_trace,
    phase_durations,
    render_summary,
    summarize_trace,
)
from repro.obs.trace import (
    PhaseTimer,
    TraceContext,
    active,
    current,
    current_phase_timer,
    detail_enabled,
    event,
    metric,
    phase_timing,
    span,
    trace_scope,
    tracing,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "MultiSink",
    "NullSink",
    "PHASES",
    "PhaseTimer",
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "Sink",
    "TraceContext",
    "TraceProfile",
    "TraceSummary",
    "TtySink",
    "active",
    "current",
    "current_phase_timer",
    "current_registry",
    "detail_enabled",
    "event",
    "load_trace",
    "merge_streams",
    "metric",
    "parse_prometheus",
    "phase_durations",
    "phase_timing",
    "profile_trace",
    "quantile_from_buckets",
    "register_cache",
    "register_instrument",
    "render_profile",
    "render_prometheus",
    "render_summary",
    "scoped_registry",
    "span",
    "summarize_trace",
    "trace_scope",
    "tracing",
    "validate_events",
]
