"""Observability: structured tracing and metrics for the TRACER loop.

Sub-modules:

* :mod:`repro.obs.trace` — the span/event runtime the search loop is
  instrumented with (near-free when no sink is installed);
* :mod:`repro.obs.events` — the versioned trace-record schema,
  validation, and deterministic merging of parallel worker streams;
* :mod:`repro.obs.sinks` — where records go: no-op, in-memory, JSONL
  file, live TTY progress;
* :mod:`repro.obs.metrics` — the cache-counter registry (single
  source of truth for hit/miss statistics);
* :mod:`repro.obs.summarize` — post-hoc trace analysis behind
  ``repro trace validate / summarize``.

See ``docs/OBSERVABILITY.md`` for the full story.
"""

from repro.obs.events import (
    PHASES,
    SCHEMA_VERSION,
    merge_streams,
    validate_events,
)
from repro.obs.metrics import (
    MetricsRegistry,
    current_registry,
    register_cache,
    scoped_registry,
)
from repro.obs.sinks import (
    JsonlSink,
    MemorySink,
    MultiSink,
    NullSink,
    Sink,
    TtySink,
)
from repro.obs.summarize import (
    TraceSummary,
    load_trace,
    phase_durations,
    render_summary,
    summarize_trace,
)
from repro.obs.trace import (
    TraceContext,
    active,
    current,
    detail_enabled,
    event,
    metric,
    span,
    tracing,
)

__all__ = [
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "MultiSink",
    "NullSink",
    "PHASES",
    "SCHEMA_VERSION",
    "Sink",
    "TraceContext",
    "TraceSummary",
    "TtySink",
    "active",
    "current",
    "current_registry",
    "detail_enabled",
    "event",
    "load_trace",
    "merge_streams",
    "metric",
    "phase_durations",
    "register_cache",
    "render_summary",
    "scoped_registry",
    "span",
    "summarize_trace",
    "tracing",
    "validate_events",
]
