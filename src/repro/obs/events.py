"""The versioned trace-event schema, validation, and stream merging.

A trace is a sequence of flat JSON records (one per line in a ``.jsonl``
file).  Record types:

``trace_header``
    First record of every stream: ``{"type": "trace_header",
    "schema": SCHEMA_VERSION, "producer": "repro"}``.  Consumers must
    reject streams whose major schema version they do not know;
    :func:`validate_events` accepts every version in
    :data:`SUPPORTED_SCHEMA_VERSIONS` (version 1 streams predate trace
    ids and remain valid).

Schema version 2 adds an optional ``"trace"`` key — a string trace id
— to every non-header record.  All records emitted while one daemon
request (or one parallel work unit) is active carry the same trace id,
so spans from one logical request can be correlated across merged
streams and across the client/server boundary (the daemon uses the
request's ``request_id`` as the trace id).

``span_start`` / ``span_end``
    A timed interval: ``{"type": "span_start", "id": N,
    "parent": M | null, "name": str, "t": seconds, "phase"?: str,
    "attrs"?: {...}}`` and ``{"type": "span_end", "id": N,
    "t": seconds, "attrs"?: {...}}``.  ``t`` is a monotonic clock
    reading — only differences within one stream are meaningful.
    ``phase`` classifies the span for the per-phase breakdown; the
    phases emitted by the TRACER driver are ``"synthesis"`` (picking
    the next abstraction by MinCostSAT), ``"forward"`` (the forward
    fixpoint and counterexample extraction), and ``"backward"`` (the
    backward meta-analysis).

``event``
    A point record attached to the enclosing span: ``{"type": "event",
    "name": str, "span": N | null, "t": seconds, "attrs"?: {...}}``.
    Notable names: ``query_resolved`` (one per query, carrying the
    fields of its :class:`~repro.core.stats.QueryRecord`) and
    ``iteration_detail`` (detail mode only; the payload transcripts
    are rebuilt from).  The robustness layer adds three more:
    ``budget_exceeded`` (a cooperative deadline/step budget tripped;
    ``phase`` says where, ``reason`` why), ``degraded`` (the solver
    kept going in a reduced mode — a beam-width retreat after a
    formula explosion, a contained client error under lenient mode,
    or permanently failed work units), and ``fault_injected`` (a
    :mod:`repro.robust.faults` rule fired; carries ``site``,
    ``action``, ``hit``).  The certification layer adds three more:
    ``certificate_emitted`` (the driver packaged a verdict certificate;
    carries ``query``, ``verdict``, ``clauses``, ``witnesses``),
    ``certificate_checked`` (the independent checker finished one
    certificate; carries ``query``, ``verdict``, ``ok``, ``problems``),
    and ``journal_replayed`` (a resumed search consumed one recorded
    CEGAR round instead of re-running it; carries ``round``,
    ``queries``, ``outcome``).  The serving layer adds four more:
    ``session_opened`` (a resident session first saw a program digest,
    or the daemon started listening), ``warm_start`` (a search was
    seeded from prior knowledge; ``mode`` is ``"replay"`` or
    ``"clauses"``), ``store_hit`` (a knowledge-store lookup answered;
    ``tier`` is ``"replay"`` or ``"clauses"``), and ``request_served``
    (the daemon finished one request; carries ``op``, ``ok``, ``mode``,
    ``seconds``).  The telemetry layer adds three more:
    ``request_received`` (the daemon dequeued one request; carries
    ``request_id``, ``op``, ``queue_seconds``), ``request_finished``
    (the full per-request summary: ``request_id``, ``op``, ``ok``,
    ``mode``, ``seconds``, ``queue_seconds``, per-phase ``phases``),
    and ``metrics_scraped`` (the ``metrics`` op or the ``--metrics-out``
    writer rendered the registry; carries ``bytes``).  The hardened
    serving layer adds four more: ``request_shed`` (admission control
    refused a request; ``reason`` is ``"overloaded"``,
    ``"deadline_exceeded"``, or ``"oversized"``), ``request_retried``
    (a retried request id was answered from the dedup ring or coalesced
    onto the in-flight execution; ``replay`` says which),
    ``worker_respawned`` (a supervised pool worker was restarted after
    a crash or hang; carries ``reason``, ``backoff_seconds``,
    ``consecutive_failures``), and ``store_compacted`` (the knowledge
    store was rewritten latest-wins; carries ``entries_before``,
    ``entries_after``, ``dropped``, byte counts).  Event names are
    open — new ones carry no schema
    change — but every name the codebase emits is registered in
    :data:`KNOWN_EVENT_NAMES` so tools (and tests) can spot typos.

``metric``
    A named counter snapshot: ``{"type": "metric", "name": str,
    "hits": int, "misses": int, "t": seconds}`` — emitted at the end
    of a run from the :class:`~repro.obs.metrics.MetricsRegistry`.

Streams recorded by parallel workers are combined with
:func:`merge_streams`, which keeps one header, remaps span ids into
disjoint ranges, and tags every record with its worker stream index —
the merge is a pure function of the input streams and their order, so
parallel traces are deterministic given the work-unit order.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

SCHEMA_VERSION = 2

#: Versions :func:`validate_events` accepts.  Version 1 streams (no
#: trace ids) remain readable by every consumer.
SUPPORTED_SCHEMA_VERSIONS = frozenset({1, 2})

TRACE_HEADER = "trace_header"
SPAN_START = "span_start"
SPAN_END = "span_end"
EVENT = "event"
METRIC = "metric"

RECORD_TYPES = frozenset({TRACE_HEADER, SPAN_START, SPAN_END, EVENT, METRIC})

PHASES = ("forward", "backward", "synthesis")

#: Every event name the codebase emits (``obs.event(name, ...)``).
#: The schema leaves names open, so an unknown name is not a validation
#: error — this registry exists so consumers can enumerate what a
#: trace may contain and so the test suite catches emit-site typos.
KNOWN_EVENT_NAMES = frozenset({
    # the TRACER driver
    "query_resolved",
    "iteration_detail",
    # the robustness layer (docs/ROBUSTNESS.md)
    "budget_exceeded",
    "degraded",
    "fault_injected",
    # certification and the search journal
    "certificate_emitted",
    "certificate_checked",
    "journal_replayed",
    # the compiled forward engine (docs/PERFORMANCE.md)
    "kernel_exec",
    # the serving layer (docs/SERVING.md)
    "session_opened",
    "warm_start",
    "store_hit",
    "request_served",
    # serving telemetry (docs/OBSERVABILITY.md)
    "request_received",
    "request_finished",
    "metrics_scraped",
    # hardened serving (docs/ROBUSTNESS.md, "The daemon's fault sites")
    "request_shed",
    "request_retried",
    "worker_respawned",
    "store_compacted",
    # the work-stealing scheduler + clause bus (docs/ROBUSTNESS.md,
    # "Leases and work stealing")
    "lease_claimed",
    "lease_expired",
    "lease_stolen",
    "clause_published",
    "clause_imported",
})


def header() -> dict:
    """The stream-opening record."""
    return {"type": TRACE_HEADER, "schema": SCHEMA_VERSION, "producer": "repro"}


def validate_events(records: Iterable[dict]) -> List[str]:
    """Check a record stream against the schema; returns the list of
    problems found (empty = valid).

    Validation is structural: header first and version known, every
    record carries its required keys, span ends match prior starts,
    span parents exist, and events reference open-or-finished spans.
    """
    errors: List[str] = []
    seen_header = False
    started: Dict[int, str] = {}
    ended: set = set()
    for index, record in enumerate(records):
        where = f"record {index}"
        if not isinstance(record, dict):
            errors.append(f"{where}: not an object")
            continue
        rtype = record.get("type")
        if index == 0:
            if rtype != TRACE_HEADER:
                errors.append(f"{where}: first record must be a trace_header")
            elif record.get("schema") not in SUPPORTED_SCHEMA_VERSIONS:
                errors.append(
                    f"{where}: unsupported schema version "
                    f"{record.get('schema')!r} (supported: "
                    f"{sorted(SUPPORTED_SCHEMA_VERSIONS)})"
                )
            seen_header = True
            continue
        if rtype == TRACE_HEADER:
            errors.append(f"{where}: duplicate trace_header")
            continue
        if rtype not in RECORD_TYPES:
            errors.append(f"{where}: unknown record type {rtype!r}")
            continue
        if not isinstance(record.get("t"), (int, float)):
            errors.append(f"{where}: missing numeric timestamp 't'")
        trace = record.get("trace")
        if trace is not None and not isinstance(trace, str):
            errors.append(f"{where}: non-string trace id {trace!r}")
        if rtype == SPAN_START:
            span_id = record.get("id")
            if not isinstance(span_id, int):
                errors.append(f"{where}: span_start without integer 'id'")
                continue
            if span_id in started:
                errors.append(f"{where}: duplicate span id {span_id}")
            if not isinstance(record.get("name"), str):
                errors.append(f"{where}: span_start without 'name'")
            parent = record.get("parent")
            if parent is not None and parent not in started:
                errors.append(
                    f"{where}: span {span_id} has unknown parent {parent!r}"
                )
            phase = record.get("phase")
            if phase is not None and phase not in PHASES:
                errors.append(f"{where}: unknown phase {phase!r}")
            started[span_id] = record.get("name", "?")
        elif rtype == SPAN_END:
            span_id = record.get("id")
            if span_id not in started:
                errors.append(f"{where}: span_end for unknown id {span_id!r}")
            elif span_id in ended:
                errors.append(f"{where}: span {span_id} ended twice")
            else:
                ended.add(span_id)
        elif rtype == EVENT:
            if not isinstance(record.get("name"), str):
                errors.append(f"{where}: event without 'name'")
            span = record.get("span")
            if span is not None and span not in started:
                errors.append(f"{where}: event on unknown span {span!r}")
        elif rtype == METRIC:
            if not isinstance(record.get("name"), str):
                errors.append(f"{where}: metric without 'name'")
            for key in ("hits", "misses"):
                if not isinstance(record.get(key), int):
                    errors.append(f"{where}: metric without integer {key!r}")
    if not seen_header:
        errors.append("empty stream: no trace_header")
    unfinished = sorted(set(started) - ended)
    if unfinished:
        errors.append(
            "unfinished spans: "
            + ", ".join(f"{i} ({started[i]})" for i in unfinished)
        )
    return errors


def merge_streams(streams: Sequence[Sequence[dict]]) -> List[dict]:
    """Deterministically merge per-worker event streams into one.

    Streams are concatenated in the given order (the parallel harness
    passes them in work-unit order, which is the serial evaluation
    order), span ids are remapped into disjoint ranges, per-stream
    headers are dropped in favour of a single leading header, and each
    record gains a ``"stream"`` key naming its origin.  Timestamps and
    ``"trace"`` ids are left untouched: timestamps are only comparable
    within one stream, while trace ids are global — records from
    different streams that share a trace id belong to one logical
    request and stay correlated across the merge.
    """
    merged: List[dict] = [header()]
    offset = 0
    for stream_index, stream in enumerate(streams):
        top = 0
        for record in stream:
            if record.get("type") == TRACE_HEADER:
                continue
            record = dict(record)
            record["stream"] = stream_index
            span_id = record.get("id")
            if isinstance(span_id, int):
                record["id"] = span_id + offset
                top = max(top, span_id + 1)
            for key in ("parent", "span"):
                ref = record.get(key)
                if isinstance(ref, int):
                    record[key] = ref + offset
            merged.append(record)
        offset += top
    return merged
