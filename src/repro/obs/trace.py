"""Span/event tracing runtime for the TRACER search loop.

The instrumentation points in :mod:`repro.core.tracer` (and anywhere
else) call :func:`span` and :func:`event` unconditionally; when no
sink is installed both are near-free no-ops (one global read plus a
singleton context manager), which is how the "no-op sink" overhead
budget of ``bench_smoke`` is met.  Installing a sink via
:func:`tracing` turns the same call sites into a structured event
stream (see :mod:`repro.obs.events` for the schema):

* a *span* is a named, timed interval with a parent (spans nest
  lexically via ``with``); phase-carrying spans (``phase`` in
  ``{"forward", "backward", "synthesis"}``) are what
  ``repro trace summarize`` aggregates into the per-phase wall-clock
  breakdown behind the paper's Table 3 timing columns;
* an *event* is a point-in-time record attached to the current span.

The runtime is deliberately process-local and not thread-safe: the
evaluation parallelises across *processes* (``repro.bench.parallel``),
each of which owns its own context, and worker streams are merged
deterministically afterwards (:func:`repro.obs.events.merge_streams`).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterator, List, Optional

from repro.obs.events import (
    EVENT,
    METRIC,
    SPAN_END,
    SPAN_START,
    TRACE_HEADER,
    header as _header,
)
from repro.obs.sinks import Sink

__all__ = [
    "TraceContext",
    "active",
    "current",
    "detail_enabled",
    "event",
    "metric",
    "span",
    "tracing",
]


class _NoopSpan:
    """Shared do-nothing span returned while tracing is inactive."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs) -> None:
        """Discard end-time attributes (tracing is off)."""


_NOOP_SPAN = _NoopSpan()


class _Span:
    """A live span: emits ``span_start`` on enter, ``span_end`` on exit."""

    __slots__ = ("_ctx", "_id", "_end_attrs")

    def __init__(self, ctx: "TraceContext", span_id: int, end_attrs: dict):
        self._ctx = ctx
        self._id = span_id
        self._end_attrs = end_attrs

    def __enter__(self):
        return self

    def set(self, **attrs) -> None:
        """Attach attributes to the ``span_end`` record (values that
        are only known once the spanned work finishes)."""
        self._end_attrs.update(attrs)

    def __exit__(self, *exc):
        self._ctx._end_span(self._id, self._end_attrs)
        return False


class TraceContext:
    """One tracing session: a sink, a span stack, and an id counter."""

    __slots__ = ("sink", "detail", "clock", "_next_id", "_stack")

    def __init__(
        self,
        sink: Sink,
        detail: bool = False,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.sink = sink
        self.detail = detail
        self.clock = clock
        self._next_id = 0
        self._stack: List[int] = []

    def open(self) -> None:
        self.sink.emit(_header())

    def close(self) -> None:
        self.sink.close()

    # -- emission ----------------------------------------------------------

    def start_span(self, name: str, phase: Optional[str], attrs: dict) -> _Span:
        span_id = self._next_id
        self._next_id += 1
        record: Dict[str, object] = {
            "type": SPAN_START,
            "id": span_id,
            "parent": self._stack[-1] if self._stack else None,
            "name": name,
            "t": self.clock(),
        }
        if phase is not None:
            record["phase"] = phase
        if attrs:
            record["attrs"] = attrs
        self._stack.append(span_id)
        self.sink.emit(record)
        return _Span(self, span_id, {})

    def _end_span(self, span_id: int, attrs: dict) -> None:
        # Close any spans left open below this one (a span abandoned by
        # an exception) so the stream stays well-nested.
        while self._stack and self._stack[-1] != span_id:
            dangling = self._stack.pop()
            self.sink.emit({"type": SPAN_END, "id": dangling, "t": self.clock()})
        if self._stack:
            self._stack.pop()
        record: Dict[str, object] = {
            "type": SPAN_END,
            "id": span_id,
            "t": self.clock(),
        }
        if attrs:
            record["attrs"] = attrs
        self.sink.emit(record)

    def emit_event(self, name: str, attrs: dict) -> None:
        record: Dict[str, object] = {
            "type": EVENT,
            "name": name,
            "span": self._stack[-1] if self._stack else None,
            "t": self.clock(),
        }
        if attrs:
            record["attrs"] = attrs
        self.sink.emit(record)

    def emit_metric(self, name: str, hits: int, misses: int, **extra) -> None:
        record: Dict[str, object] = {
            "type": METRIC,
            "name": name,
            "hits": hits,
            "misses": misses,
            "t": self.clock(),
        }
        record.update(extra)
        self.sink.emit(record)

    def ingest(self, records) -> None:
        """Replay externally-recorded records (e.g. a merged parallel
        worker stream) into this context's stream.

        Span ids are re-allocated from this context's counter so they
        can never collide with ids this context assigns before or
        after; headers are dropped (this stream already has one).
        Timestamps are kept verbatim — they remain comparable only
        within their original stream, which per-span durations are.
        """
        remap: Dict[int, int] = {}
        for record in records:
            if record.get("type") == TRACE_HEADER:
                continue
            record = dict(record)
            span_id = record.get("id")
            if isinstance(span_id, int):
                if span_id not in remap:
                    remap[span_id] = self._next_id
                    self._next_id += 1
                record["id"] = remap[span_id]
            for key in ("parent", "span"):
                ref = record.get(key)
                if isinstance(ref, int) and ref in remap:
                    record[key] = remap[ref]
            self.sink.emit(record)


#: The installed context, or ``None`` (tracing off — the default).
_CURRENT: Optional[TraceContext] = None


def current() -> Optional[TraceContext]:
    """The installed :class:`TraceContext`, or ``None``."""
    return _CURRENT


def active() -> bool:
    """Whether a sink is installed (anything will actually be emitted)."""
    return _CURRENT is not None


def detail_enabled() -> bool:
    """Whether the installed context asks for *detail* events — the
    heavyweight per-iteration payloads (rendered formulas, forward
    states) that make post-hoc transcripts possible but are too
    expensive for always-on production traces."""
    ctx = _CURRENT
    return ctx is not None and ctx.detail


def span(name: str, phase: Optional[str] = None, **attrs):
    """Open a span; use as ``with span("forward", phase="forward"):``.

    Returns a no-op singleton when tracing is inactive, so the call is
    safe (and cheap) on hot paths."""
    ctx = _CURRENT
    if ctx is None:
        return _NOOP_SPAN
    return ctx.start_span(name, phase, attrs)


def event(name: str, **attrs) -> None:
    """Emit a point event attached to the current span (no-op when
    tracing is inactive)."""
    ctx = _CURRENT
    if ctx is not None:
        ctx.emit_event(name, attrs)


def metric(name: str, hits: int, misses: int, **extra) -> None:
    """Emit one cache-counter snapshot record (no-op when tracing is
    inactive)."""
    ctx = _CURRENT
    if ctx is not None:
        ctx.emit_metric(name, hits, misses, **extra)


class tracing:
    """Install ``sink`` for the duration of a ``with`` block.

    Nested installations stack: the inner context temporarily replaces
    the outer one (this is what lets ``narrate`` capture its own event
    stream even inside an already-traced run)."""

    def __init__(
        self,
        sink: Sink,
        detail: bool = False,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self._context = TraceContext(sink, detail=detail, clock=clock)
        self._previous: Optional[TraceContext] = None

    def __enter__(self) -> TraceContext:
        global _CURRENT
        self._previous = _CURRENT
        _CURRENT = self._context
        self._context.open()
        return self._context

    def __exit__(self, *exc) -> bool:
        global _CURRENT
        _CURRENT = self._previous
        self._context.close()
        return False
