"""Span/event tracing runtime for the TRACER search loop.

The instrumentation points in :mod:`repro.core.tracer` (and anywhere
else) call :func:`span` and :func:`event` unconditionally; when no
sink is installed both are near-free no-ops (one global read plus a
singleton context manager), which is how the "no-op sink" overhead
budget of ``bench_smoke`` is met.  Installing a sink via
:func:`tracing` turns the same call sites into a structured event
stream (see :mod:`repro.obs.events` for the schema):

* a *span* is a named, timed interval with a parent (spans nest
  lexically via ``with``); phase-carrying spans (``phase`` in
  ``{"forward", "backward", "synthesis"}``) are what
  ``repro trace summarize`` aggregates into the per-phase wall-clock
  breakdown behind the paper's Table 3 timing columns;
* an *event* is a point-in-time record attached to the current span.

The runtime is deliberately process-local and not thread-safe: the
evaluation parallelises across *processes* (``repro.bench.parallel``),
each of which owns its own context, and worker streams are merged
deterministically afterwards (:func:`repro.obs.events.merge_streams`).

Two serving-layer additions ride the same ambient-state design:

* **Trace ids** — a context may carry a ``trace_id`` (schema v2);
  every record emitted while it is set gains a ``"trace"`` key.  The
  daemon wraps each request in :func:`trace_scope` with the request id,
  so all spans/events of one request share one trace id end to end.
* **Phase timing without a sink** — :func:`phase_timing` installs a
  :class:`PhaseTimer` that accumulates exclusive per-phase wall-clock
  from the same ``span(..., phase=...)`` call sites, whether or not a
  sink is installed.  The no-op fast path stays near-free: an
  unphased ``span()`` with no sink still reads a single module global.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterator, List, Optional

from repro.obs.events import (
    EVENT,
    METRIC,
    SPAN_END,
    SPAN_START,
    TRACE_HEADER,
    header as _header,
)
from repro.obs.sinks import Sink

__all__ = [
    "PhaseTimer",
    "TraceContext",
    "active",
    "current",
    "current_phase_timer",
    "detail_enabled",
    "event",
    "metric",
    "phase_timing",
    "span",
    "trace_scope",
    "tracing",
]


class _NoopSpan:
    """Shared do-nothing span returned while tracing is inactive."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs) -> None:
        """Discard end-time attributes (tracing is off)."""


_NOOP_SPAN = _NoopSpan()


class _Span:
    """A live span: emits ``span_start`` on enter, ``span_end`` on exit."""

    __slots__ = ("_ctx", "_id", "_end_attrs")

    def __init__(self, ctx: "TraceContext", span_id: int, end_attrs: dict):
        self._ctx = ctx
        self._id = span_id
        self._end_attrs = end_attrs

    def __enter__(self):
        return self

    def set(self, **attrs) -> None:
        """Attach attributes to the ``span_end`` record (values that
        are only known once the spanned work finishes)."""
        self._end_attrs.update(attrs)

    def __exit__(self, *exc):
        self._ctx._end_span(self._id, self._end_attrs)
        return False


class TraceContext:
    """One tracing session: a sink, a span stack, and an id counter."""

    __slots__ = ("sink", "detail", "clock", "trace_id", "_next_id", "_stack")

    def __init__(
        self,
        sink: Sink,
        detail: bool = False,
        clock: Callable[[], float] = time.perf_counter,
        trace_id: Optional[str] = None,
    ):
        self.sink = sink
        self.detail = detail
        self.clock = clock
        #: Stamped as ``"trace"`` on every emitted record while set —
        #: the schema v2 correlation key (see :func:`trace_scope`).
        self.trace_id = trace_id
        self._next_id = 0
        self._stack: List[int] = []

    def open(self) -> None:
        self.sink.emit(_header())

    def close(self) -> None:
        self.sink.close()

    # -- emission ----------------------------------------------------------

    def start_span(self, name: str, phase: Optional[str], attrs: dict) -> _Span:
        span_id = self._next_id
        self._next_id += 1
        record: Dict[str, object] = {
            "type": SPAN_START,
            "id": span_id,
            "parent": self._stack[-1] if self._stack else None,
            "name": name,
            "t": self.clock(),
        }
        if phase is not None:
            record["phase"] = phase
        if attrs:
            record["attrs"] = attrs
        if self.trace_id is not None:
            record["trace"] = self.trace_id
        self._stack.append(span_id)
        self.sink.emit(record)
        return _Span(self, span_id, {})

    def _end_span(self, span_id: int, attrs: dict) -> None:
        # Close any spans left open below this one (a span abandoned by
        # an exception) so the stream stays well-nested.
        while self._stack and self._stack[-1] != span_id:
            dangling = self._stack.pop()
            closer: Dict[str, object] = {
                "type": SPAN_END, "id": dangling, "t": self.clock(),
            }
            if self.trace_id is not None:
                closer["trace"] = self.trace_id
            self.sink.emit(closer)
        if self._stack:
            self._stack.pop()
        record: Dict[str, object] = {
            "type": SPAN_END,
            "id": span_id,
            "t": self.clock(),
        }
        if attrs:
            record["attrs"] = attrs
        if self.trace_id is not None:
            record["trace"] = self.trace_id
        self.sink.emit(record)

    def emit_event(self, name: str, attrs: dict) -> None:
        record: Dict[str, object] = {
            "type": EVENT,
            "name": name,
            "span": self._stack[-1] if self._stack else None,
            "t": self.clock(),
        }
        if attrs:
            record["attrs"] = attrs
        if self.trace_id is not None:
            record["trace"] = self.trace_id
        self.sink.emit(record)

    def emit_metric(self, name: str, hits: int, misses: int, **extra) -> None:
        record: Dict[str, object] = {
            "type": METRIC,
            "name": name,
            "hits": hits,
            "misses": misses,
            "t": self.clock(),
        }
        record.update(extra)
        if self.trace_id is not None:
            record["trace"] = self.trace_id
        self.sink.emit(record)

    def ingest(self, records) -> None:
        """Replay externally-recorded records (e.g. a merged parallel
        worker stream) into this context's stream.

        Span ids are re-allocated from this context's counter so they
        can never collide with ids this context assigns before or
        after; headers are dropped (this stream already has one).
        Timestamps are kept verbatim — they remain comparable only
        within their original stream, which per-span durations are.
        """
        remap: Dict[int, int] = {}
        for record in records:
            if record.get("type") == TRACE_HEADER:
                continue
            record = dict(record)
            span_id = record.get("id")
            if isinstance(span_id, int):
                if span_id not in remap:
                    remap[span_id] = self._next_id
                    self._next_id += 1
                record["id"] = remap[span_id]
            for key in ("parent", "span"):
                ref = record.get(key)
                if isinstance(ref, int) and ref in remap:
                    record[key] = remap[ref]
            self.sink.emit(record)


class _PhaseSpan:
    """A live phase-timing interval (no sink involved)."""

    __slots__ = ("_timer", "_entry")

    def __init__(self, timer: "PhaseTimer", entry: list):
        self._timer = timer
        self._entry = entry

    def __enter__(self):
        return self

    def set(self, **attrs) -> None:
        """Discard attributes (phase timing keeps durations only)."""

    def __exit__(self, *exc):
        self._timer._end(self._entry)
        return False


class PhaseTimer:
    """Accumulates *exclusive* wall-clock per phase from the same
    ``span(..., phase=...)`` call sites the tracer instruments — no
    sink required.  Exclusive means a phased span is charged its
    duration minus its phased children, matching the attribution of
    :func:`repro.obs.summarize.phase_durations`."""

    __slots__ = ("totals", "clock", "_stack")

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self.totals: Dict[str, float] = {}
        self.clock = clock
        self._stack: List[list] = []  # [phase, start_t, child_seconds]

    def start(self, phase: str) -> _PhaseSpan:
        entry = [phase, self.clock(), 0.0]
        self._stack.append(entry)
        return _PhaseSpan(self, entry)

    def _end(self, entry: list) -> None:
        now = self.clock()
        # Pop down to (and including) ``entry`` so intervals abandoned
        # by an exception still get charged.
        while self._stack:
            top = self._stack.pop()
            duration = now - top[1]
            self.totals[top[0]] = self.totals.get(top[0], 0.0) + max(
                0.0, duration - top[2]
            )
            if self._stack:
                self._stack[-1][2] += duration
            if top is entry:
                break


class _DualSpan:
    """A traced span that also feeds the installed phase timer."""

    __slots__ = ("_traced", "_timed")

    def __init__(self, traced: _Span, timed: _PhaseSpan):
        self._traced = traced
        self._timed = timed

    def __enter__(self):
        return self

    def set(self, **attrs) -> None:
        self._traced.set(**attrs)

    def __exit__(self, *exc):
        self._timed.__exit__(*exc)
        return self._traced.__exit__(*exc)


#: The installed context, or ``None`` (tracing off — the default).
_CURRENT: Optional[TraceContext] = None

#: The installed phase timer, or ``None`` (the default).
_PHASES: Optional[PhaseTimer] = None


def current() -> Optional[TraceContext]:
    """The installed :class:`TraceContext`, or ``None``."""
    return _CURRENT


def active() -> bool:
    """Whether a sink is installed (anything will actually be emitted)."""
    return _CURRENT is not None


def detail_enabled() -> bool:
    """Whether the installed context asks for *detail* events — the
    heavyweight per-iteration payloads (rendered formulas, forward
    states) that make post-hoc transcripts possible but are too
    expensive for always-on production traces."""
    ctx = _CURRENT
    return ctx is not None and ctx.detail


def current_phase_timer() -> Optional[PhaseTimer]:
    """The installed :class:`PhaseTimer`, or ``None``."""
    return _PHASES


def span(name: str, phase: Optional[str] = None, **attrs):
    """Open a span; use as ``with span("forward", phase="forward"):``.

    Returns a no-op singleton when tracing is inactive, so the call is
    safe (and cheap) on hot paths.  Phased spans additionally feed the
    installed :class:`PhaseTimer` (if any), sink or no sink."""
    ctx = _CURRENT
    if phase is None:
        if ctx is None:
            return _NOOP_SPAN
        return ctx.start_span(name, phase, attrs)
    timer = _PHASES
    if ctx is None:
        if timer is None:
            return _NOOP_SPAN
        return timer.start(phase)
    traced = ctx.start_span(name, phase, attrs)
    if timer is None:
        return traced
    return _DualSpan(traced, timer.start(phase))


def event(name: str, **attrs) -> None:
    """Emit a point event attached to the current span (no-op when
    tracing is inactive)."""
    ctx = _CURRENT
    if ctx is not None:
        ctx.emit_event(name, attrs)


def metric(name: str, hits: int, misses: int, **extra) -> None:
    """Emit one cache-counter snapshot record (no-op when tracing is
    inactive)."""
    ctx = _CURRENT
    if ctx is not None:
        ctx.emit_metric(name, hits, misses, **extra)


class tracing:
    """Install ``sink`` for the duration of a ``with`` block.

    Nested installations stack: the inner context temporarily replaces
    the outer one (this is what lets ``narrate`` capture its own event
    stream even inside an already-traced run)."""

    def __init__(
        self,
        sink: Sink,
        detail: bool = False,
        clock: Callable[[], float] = time.perf_counter,
        trace_id: Optional[str] = None,
    ):
        self._context = TraceContext(
            sink, detail=detail, clock=clock, trace_id=trace_id
        )
        self._previous: Optional[TraceContext] = None

    def __enter__(self) -> TraceContext:
        global _CURRENT
        self._previous = _CURRENT
        _CURRENT = self._context
        self._context.open()
        return self._context

    def __exit__(self, *exc) -> bool:
        global _CURRENT
        _CURRENT = self._previous
        self._context.close()
        return False


class trace_scope:
    """Set the ambient context's trace id for a ``with`` block.

    All records emitted inside the block carry ``"trace": trace_id``;
    the previous id (usually ``None``) is restored on exit.  A no-op
    when tracing is inactive — the scope is safe to enter
    unconditionally, which is how the daemon wraps every request."""

    def __init__(self, trace_id: Optional[str]):
        self.trace_id = trace_id
        self._previous: Optional[str] = None
        self._context: Optional[TraceContext] = None

    def __enter__(self) -> "trace_scope":
        self._context = _CURRENT
        if self._context is not None:
            self._previous = self._context.trace_id
            self._context.trace_id = self.trace_id
        return self

    def __exit__(self, *exc) -> bool:
        if self._context is not None:
            self._context.trace_id = self._previous
        return False


class phase_timing:
    """Install a :class:`PhaseTimer` for a ``with`` block.

    ``with phase_timing() as timer: ...`` — afterwards
    ``timer.totals`` maps each phase to its exclusive wall-clock.
    Nested installations stack (the inner timer shadows the outer one
    for its duration), mirroring :func:`tracing`."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._timer = PhaseTimer(clock=clock)
        self._previous: Optional[PhaseTimer] = None

    def __enter__(self) -> PhaseTimer:
        global _PHASES
        self._previous = _PHASES
        _PHASES = self._timer
        return self._timer

    def __exit__(self, *exc) -> bool:
        global _PHASES
        _PHASES = self._previous
        return False
