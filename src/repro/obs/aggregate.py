"""Post-hoc trace profiling: ``repro trace profile``.

Where ``repro trace summarize`` answers "how much time per *phase*",
the profiler answers "how much time per *call site*": it folds one or
more JSONL traces (parallel-worker streams are merged through
:func:`~repro.obs.events.merge_streams` first, so trace ids stay
correlated) into a flat-profile table with, per span name,

* ``count`` — how many spans ran,
* ``total`` — wall-clock with children included (inclusive), and
* ``self``  — wall-clock minus direct children (exclusive),

sorted by self time, which is the classic "where does the time
actually go" view.  ``--by-trace`` adds a per-request roll-up keyed by
the schema v2 trace id (daemon request ids, parallel unit ids), which
is how operators go from a latency outlier in the histograms to the
spans that caused it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.obs.events import SPAN_END, SPAN_START, merge_streams

__all__ = [
    "SiteProfile",
    "TraceProfile",
    "profile_trace",
    "render_profile",
]


@dataclass
class SiteProfile:
    """One row of the flat profile."""

    name: str
    count: int
    total_seconds: float
    self_seconds: float


@dataclass
class TraceProfile:
    sites: List[SiteProfile]
    traces: Dict[str, Dict[str, float]]
    span_count: int

    @property
    def self_total(self) -> float:
        return sum(site.self_seconds for site in self.sites)


def _folded_spans(records: Sequence[dict]):
    """``(name, trace, duration, self_duration)`` per finished span."""
    spans: Dict[int, list] = {}  # id -> [name, trace, start, end, child_sec]
    for record in records:
        rtype = record.get("type")
        if rtype == SPAN_START:
            spans[record["id"]] = [
                record.get("name", "?"),
                record.get("trace"),
                record["t"],
                None,
                0.0,
                record.get("parent"),
            ]
        elif rtype == SPAN_END:
            info = spans.get(record.get("id"))
            if info is not None:
                info[3] = record["t"]
    for info in spans.values():
        if info[3] is None:
            continue
        parent = spans.get(info[5])
        if parent is not None:
            parent[4] += info[3] - info[2]
    for name, trace, start, end, child_seconds, _parent in spans.values():
        if end is None:
            continue
        duration = end - start
        yield name, trace, duration, max(0.0, duration - child_seconds)


def profile_trace(
    streams: Sequence[Sequence[dict]],
) -> TraceProfile:
    """Fold one or more record streams into a :class:`TraceProfile`.

    Multiple streams (separate worker/daemon trace files) are merged
    deterministically first; a single stream is profiled as-is.
    """
    if len(streams) == 1:
        records: Sequence[dict] = streams[0]
    else:
        records = merge_streams(streams)
    by_site: Dict[str, SiteProfile] = {}
    by_trace: Dict[str, Dict[str, float]] = {}
    span_count = 0
    for name, trace, total, self_seconds in _folded_spans(records):
        span_count += 1
        site = by_site.get(name)
        if site is None:
            site = by_site[name] = SiteProfile(name, 0, 0.0, 0.0)
        site.count += 1
        site.total_seconds += total
        site.self_seconds += self_seconds
        if trace is not None:
            entry = by_trace.setdefault(
                trace, {"spans": 0, "self_seconds": 0.0}
            )
            entry["spans"] += 1
            entry["self_seconds"] += self_seconds
    sites = sorted(
        by_site.values(), key=lambda s: (-s.self_seconds, s.name)
    )
    return TraceProfile(sites=sites, traces=by_trace, span_count=span_count)


def render_profile(
    profile: TraceProfile,
    top: Optional[int] = None,
    by_trace: bool = False,
) -> str:
    """The ``repro trace profile`` report."""
    lines: List[str] = []
    total = profile.self_total
    lines.append(
        f"{'site':<24} {'count':>7} {'total s':>10} {'self s':>10} "
        f"{'self %':>7}"
    )
    shown = profile.sites if top is None else profile.sites[:top]
    for site in shown:
        share = site.self_seconds / total if total else 0.0
        lines.append(
            f"{site.name:<24} {site.count:>7} {site.total_seconds:>10.4f} "
            f"{site.self_seconds:>10.4f} {share:>7.1%}"
        )
    dropped = len(profile.sites) - len(shown)
    if dropped > 0:
        lines.append(f"... {dropped} more site(s); use --top to widen")
    lines.append(
        f"{'all sites':<24} {profile.span_count:>7} {'':>10} "
        f"{total:>10.4f}"
    )
    if by_trace:
        lines.append("")
        if profile.traces:
            lines.append(f"{'trace':<40} {'spans':>7} {'self s':>10}")
            ordered = sorted(
                profile.traces.items(),
                key=lambda item: (-item[1]["self_seconds"], item[0]),
            )
            for trace_id, entry in ordered:
                lines.append(
                    f"{trace_id:<40} {int(entry['spans']):>7} "
                    f"{entry['self_seconds']:>10.4f}"
                )
        else:
            lines.append("no trace ids in this stream (schema v1 trace?)")
    return "\n".join(lines)
