"""Evaluation harness: benchmarks -> clients -> queries -> records.

Queries are generated pervasively, as in Section 6:

* type-state — one query ``(pc, h)`` per application call site ``pc``
  whose receiver may (0-CFA) point to an application allocation site
  ``h``; the property is the paper's fictitious stress automaton and a
  query is proven when the ``h``-object is still ``init`` at ``pc``;
* thread-escape — one query per instance-field access in application
  code, asking that the accessed object is thread-local.

``evaluate_benchmark`` runs grouped TRACER over all queries of one
benchmark for one client analysis and returns the per-query records
that every table and figure aggregates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.suite import benchmark
from repro.core.stats import CacheCounters, QueryRecord
from repro.core.tracer import ForwardRunCache, Tracer, TracerConfig
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs
from repro.escape.client import EscapeClient, EscapeQuery
from repro.escape.domain import EscSchema
from repro.frontend.callgraph import CallGraph, build_callgraph
from repro.frontend.inline import InlineResult, inline_program
from repro.frontend.mayalias import MayAliasOracle
from repro.frontend.metrics import ProgramMetrics, compute_metrics
from repro.frontend.program import FrontProgram
from repro.typestate.automaton import stress_automaton
from repro.typestate.client import TypestateClient, TypestateQuery


@dataclass
class BenchmarkInstance:
    """One benchmark, fully lowered and ready to analyse."""

    name: str
    front: FrontProgram
    callgraph: CallGraph
    inlined: InlineResult
    metrics: ProgramMetrics
    oracle: MayAliasOracle
    #: True when the program is the standard named suite benchmark (so
    #: worker processes can re-synthesize it from the name alone).
    standard: bool = False


def prepare(name: str, front: Optional[FrontProgram] = None) -> BenchmarkInstance:
    """Synthesize (or accept) a program and run the front-end pipeline,
    memoized per suite name on the process-wide
    :class:`~repro.serve.session.AnalysisSession` (the pipeline is
    deterministic, so a resident instance is equivalent to a fresh
    one)."""
    from repro.serve.session import process_session

    return process_session().prepare(name, front)


def prepare_uncached(
    name: str, front: Optional[FrontProgram] = None
) -> BenchmarkInstance:
    """The un-memoized pipeline behind :func:`prepare`."""
    standard = front is None
    if front is None:
        front = benchmark(name)
    front.finalize()
    callgraph = build_callgraph(front)
    inlined = inline_program(front, callgraph)
    metrics = compute_metrics(name, front, callgraph, inlined)
    oracle = MayAliasOracle(callgraph, inlined.var_origin)
    return BenchmarkInstance(
        name=name,
        front=front,
        callgraph=callgraph,
        inlined=inlined,
        metrics=metrics,
        oracle=oracle,
        standard=standard,
    )


# -- client construction ------------------------------------------------------


def escape_setup(bench: BenchmarkInstance) -> Tuple[EscapeClient, List[EscapeQuery]]:
    """Build the thread-escape client and its query set."""
    inlined = bench.inlined
    schema = EscSchema(
        locals_=sorted(inlined.variables | inlined.query_vars),
        fields=sorted(inlined.fields),
    )
    client = EscapeClient(inlined.program, schema, inlined.sites)
    queries = [
        EscapeQuery(pc, qvar)
        for pc, (_cls, _meth, _base, qvar) in sorted(inlined.access_points.items())
    ]
    return client, queries


def escape_setup_interproc(
    bench: BenchmarkInstance,
) -> Tuple[EscapeClient, List[EscapeQuery]]:
    """Like :func:`escape_setup` but through the interprocedural
    tabulation engine (procedure graph, no inlining)."""
    from repro.frontend.procedures import lower_procedures

    procs = lower_procedures(bench.front, bench.callgraph)
    schema = EscSchema(
        locals_=sorted(procs.variables | procs.query_vars),
        fields=sorted(procs.fields),
    )
    client = EscapeClient(procs.graph, schema, procs.sites)
    queries = [
        EscapeQuery(pc, qvar)
        for pc, (_cls, _meth, _base, qvar) in sorted(procs.access_points.items())
    ]
    return client, queries


def typestate_setup(
    bench: BenchmarkInstance,
) -> List[Tuple[TypestateClient, List[TypestateQuery]]]:
    """Build one type-state client per queried tracked site.

    Returns ``(client, queries)`` pairs; queries on the same tracked
    site share a client (and hence TRACER's grouping optimisation)."""
    inlined = bench.inlined
    methods = sorted({m for *_rest, m in inlined.call_points.values()})
    if not methods:
        return []
    automaton = stress_automaton(methods)
    event_labels = frozenset(inlined.call_points)
    app_sites = set(bench.front.app_sites())
    per_site: Dict[str, List[TypestateQuery]] = {}
    for pc, (cls, meth, base, _m) in sorted(inlined.call_points.items()):
        for site in sorted(bench.callgraph.pts_var(cls, meth, base)):
            if site in app_sites:
                per_site.setdefault(site, []).append(
                    TypestateQuery(pc, frozenset({"init"}))
                )
    out: List[Tuple[TypestateClient, List[TypestateQuery]]] = []
    for site in sorted(per_site):
        client = TypestateClient(
            inlined.program,
            automaton,
            tracked_site=site,
            variables=inlined.variables,
            may_point=bench.oracle.for_site(site),
            event_labels=event_labels,
        )
        out.append((client, per_site[site]))
    return out


def typestate_setup_interproc(
    bench: BenchmarkInstance,
) -> List[Tuple[TypestateClient, List[TypestateQuery]]]:
    """Like :func:`typestate_setup` but over the procedure graph (the
    interprocedural tabulation engine instead of inlining)."""
    from repro.frontend.procedures import lower_procedures

    procs = lower_procedures(bench.front, bench.callgraph)
    methods = sorted({m for *_rest, m in procs.call_points.values()})
    if not methods:
        return []
    automaton = stress_automaton(methods)
    event_labels = frozenset(procs.call_points)
    oracle = MayAliasOracle(bench.callgraph, procs.var_origin)
    app_sites = set(bench.front.app_sites())
    per_site: Dict[str, List[TypestateQuery]] = {}
    for pc, (cls, meth, base, _m) in sorted(procs.call_points.items()):
        for site in sorted(bench.callgraph.pts_var(cls, meth, base)):
            if site in app_sites:
                per_site.setdefault(site, []).append(
                    TypestateQuery(pc, frozenset({"init"}))
                )
    out: List[Tuple[TypestateClient, List[TypestateQuery]]] = []
    for site in sorted(per_site):
        client = TypestateClient(
            procs.graph,
            automaton,
            tracked_site=site,
            variables=procs.variables,
            may_point=oracle.for_site(site),
            event_labels=event_labels,
        )
        out.append((client, per_site[site]))
    return out


# -- evaluation ---------------------------------------------------------------


@dataclass
class EvalResult:
    """All records of one benchmark under one client analysis.

    Cache counters come from one place: the evaluation's
    :class:`~repro.obs.metrics.MetricsRegistry` snapshot taken when
    the run finishes (``metrics``).  The named fields below are
    convenience views derived from that snapshot at construction (see
    :func:`counters_from_metrics`) — they are never accumulated
    separately, so they cannot drift from the registry's totals.
    """

    benchmark: str
    analysis: str
    records: List[QueryRecord] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: Forward-run cache counters, summed over the evaluation's TRACER
    #: drivers (engine-level: one hit = one forward fixpoint skipped).
    forward_hits: int = 0
    forward_misses: int = 0
    #: wp-memo counters, summed over the clients' backward
    #: meta-analyses (one miss = one wp derived from the case table).
    wp_cache: CacheCounters = CacheCounters()
    #: Compiled-dispatch counters, summed over the clients' guarded
    #: semantics (one miss = one command's table compiled + checked).
    dispatch_cache: CacheCounters = CacheCounters()
    #: The full registry snapshot (name -> counters) this run's
    #: reported counters were read from.
    metrics: Dict[str, CacheCounters] = field(default_factory=dict)
    #: True when the run survived something it should not have needed
    #: to: a retried/respawned work unit, a failed unit, or a resumed
    #: checkpoint.  Records are still deterministic — degradation is
    #: about *how* they were obtained.
    degraded: bool = False
    #: Units that exhausted their retry budget, as
    #: ``"benchmark:analysis:index: error"`` strings; their queries are
    #: missing from ``records`` rather than guessed at.
    failed_units: Tuple[str, ...] = ()
    #: Verdict certificates (one dict per resolved query, in unit
    #: order), collected when the run was asked to certify (see
    #: :mod:`repro.robust.certify`); empty otherwise.
    certificates: List[dict] = field(default_factory=list)

    @property
    def query_count(self) -> int:
        return len(self.records)

    @property
    def forward_hit_rate(self) -> float:
        total = self.forward_hits + self.forward_misses
        return self.forward_hits / total if total else 0.0


def counters_from_metrics(
    metrics: Dict[str, CacheCounters],
) -> Tuple[CacheCounters, CacheCounters, CacheCounters]:
    """Fold a registry snapshot into the ``(forward-run, wp-memo,
    compiled-dispatch)`` totals :class:`EvalResult` reports."""

    def total(prefix: str) -> CacheCounters:
        out = CacheCounters()
        dotted = prefix + "."
        for name, counters in metrics.items():
            if name == prefix or name.startswith(dotted):
                out += counters
        return out

    return total("forward_run"), total("wp_memo"), total("dispatch")


#: Default per-query effort budget for the evaluation, playing the role
#: of the paper's 1000-minute timeout: queries still unresolved after
#: this many TRACER iterations are reported as unresolved (Figure 12).
#: The evaluation runs lenient (``strict=False``): one misbehaving
#: query degrades to EXHAUSTED instead of aborting the whole table.
DEFAULT_CONFIG = TracerConfig(k=5, max_iterations=30, strict=False)


#: The client-setup function per analysis name.  Single-client analyses
#: map to a one-element list so evaluation (and the parallel executor's
#: work units) can treat every analysis uniformly.
ANALYSES = ("typestate", "escape", "typestate-interproc", "escape-interproc")


def analysis_setups(bench: BenchmarkInstance, analysis: str):
    """All ``(client, queries)`` pairs of one analysis on one benchmark.

    Each pair is an independent TRACER workload (typestate clients
    track different sites; the other analyses use a single client), so
    the pairs are exactly the units the parallel executor fans out.
    """
    if analysis == "escape":
        return [escape_setup(bench)]
    if analysis == "escape-interproc":
        return [escape_setup_interproc(bench)]
    if analysis == "typestate":
        return typestate_setup(bench)
    if analysis == "typestate-interproc":
        return typestate_setup_interproc(bench)
    raise ValueError(f"unknown analysis {analysis!r}")


def client_cache_counters(client) -> Tuple[CacheCounters, CacheCounters]:
    """The ``(wp-memo, compiled-dispatch)`` counters of one client.

    Reads the counters the backward meta-analysis and the guarded
    semantics accumulate; absent attributes (a client not built on the
    IR) count as zero.

    Legacy accessor: the evaluation no longer threads counters through
    by hand — caches register with the
    :class:`~repro.obs.metrics.MetricsRegistry` and the harness reads
    one snapshot per run.  Kept for ad-hoc inspection of a single
    client."""
    meta = getattr(client, "meta", None)
    wp = CacheCounters(
        hits=getattr(meta, "wp_hits", 0),
        misses=getattr(meta, "wp_misses", 0),
    )
    semantics = getattr(getattr(client, "analysis", None), "semantics", None)
    dispatch = CacheCounters(
        hits=getattr(semantics, "dispatch_hits", 0),
        misses=getattr(semantics, "dispatch_misses", 0),
    )
    return wp, dispatch


def stamp_certificates(
    store,
    bench_name: str,
    analysis: str,
    index: int,
    queries: Sequence[object],
) -> List[dict]:
    """Attach the bench rebuild stamp to one unit's certificates, so
    ``repro certify`` can reconstruct the emitting client from
    ``(benchmark, analysis, index)`` alone."""
    position = {str(query): i for i, query in enumerate(queries)}
    for cert in store.certificates:
        cert["client"] = {
            "kind": "bench",
            "benchmark": bench_name,
            "analysis": analysis,
            "index": index,
            "query_index": position.get(cert["query"]),
        }
    return store.certificates


def evaluate_benchmark(
    bench: BenchmarkInstance,
    analysis: str,
    config: TracerConfig = DEFAULT_CONFIG,
    jobs: int = 1,
    options: "Optional[object]" = None,
) -> EvalResult:
    """Run grouped TRACER over every query of one client analysis.

    With ``jobs > 1`` the independent client workloads are fanned out
    across worker processes (see :mod:`repro.bench.parallel`); results
    are merged deterministically, so statuses, abstractions, and
    iteration counts are identical to a serial run.  ``options`` (a
    :class:`repro.bench.parallel.RunOptions`) configures the parallel
    path's retry, timeout, checkpoint, and fault-injection behaviour.
    """
    if jobs > 1:
        from repro.bench.parallel import evaluate_benchmark_parallel

        return evaluate_benchmark_parallel(
            bench, analysis, config, jobs, options=options
        )
    certify = bool(getattr(options, "certify", False))
    started = time.perf_counter()
    records: List[QueryRecord] = []
    certificates: List[dict] = []
    with obs_metrics.scoped_registry() as registry:
        cache = (
            ForwardRunCache(config.forward_cache_size)
            if config.forward_cache_size
            else None
        )
        # Keep every client alive until the snapshot below: the
        # registry holds weak references, so letting a setup be
        # collected mid-loop would silently drop its cache counters
        # from the totals.
        setups = analysis_setups(bench, analysis)
        for index, (client, queries) in enumerate(setups):
            if not queries:
                continue
            store = None
            if certify:
                from repro.robust.certify import CertificateStore

                store = CertificateStore()
            with obs.span(
                "workload",
                benchmark=bench.name,
                analysis=analysis,
                unit=index,
                queries=len(queries),
            ):
                solved = Tracer(
                    client, config, forward_cache=cache, certificates=store
                ).solve_all(queries)
            records.extend(solved[q] for q in queries)
            if store is not None:
                certificates.extend(
                    stamp_certificates(
                        store, bench.name, analysis, index, queries
                    )
                )
        snapshot = registry.snapshot()
    forward, wp_cache, dispatch_cache = counters_from_metrics(snapshot)
    if obs.active():
        for name, counters in snapshot.items():
            obs.metric(
                name,
                counters.hits,
                counters.misses,
                benchmark=bench.name,
                analysis=analysis,
            )
    return EvalResult(
        benchmark=bench.name,
        analysis=analysis,
        records=records,
        wall_seconds=time.perf_counter() - started,
        forward_hits=forward.hits,
        forward_misses=forward.misses,
        wp_cache=wp_cache,
        dispatch_cache=dispatch_cache,
        metrics=snapshot,
        certificates=certificates,
    )
