"""One-call reproduction of the paper's whole evaluation section.

Used by both ``examples/full_evaluation.py`` and the ``repro eval``
CLI command: prepares the requested benchmarks, resolves every query
of both client analyses with grouped TRACER, and renders Tables 1-4
and Figures 12-14.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.bench.figures import render_figure12, render_figure13, render_figure14
from repro.bench.harness import BenchmarkInstance, evaluate_benchmark, prepare
from repro.bench.suite import BENCHMARK_NAMES
from repro.bench.tables import (
    render_cache_stats,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)
from repro.core.stats import size_distribution, summarize_records
from repro.core.tracer import TracerConfig

SMALLEST: Tuple[str, ...] = ("tsp", "elevator", "hedc", "weblech")
LARGEST: Tuple[str, ...] = ("antlr", "avrora", "lusearch")


def full_report(
    names: Sequence[str] = BENCHMARK_NAMES,
    k: Optional[int] = 5,
    max_iterations: int = 30,
    emit: Callable[[str], None] = print,
    k_sweep: Sequence[int] = (1, 5, 10),
    jobs: int = 1,
    options: "Optional[object]" = None,
    config: Optional[TracerConfig] = None,
) -> Dict[str, Dict[str, object]]:
    """Run the evaluation on ``names`` and emit the report.

    With ``jobs > 1`` every independent workload of the evaluation (per
    benchmark, per analysis, per client) runs on a process pool; the
    rendered tables and figures are identical to a serial run because
    results merge deterministically (only wall-clock timings differ).
    ``options`` (a :class:`repro.bench.parallel.RunOptions`) configures
    that pool's retry, timeout, checkpoint/resume, and fault-injection
    behaviour; ``config`` overrides the solver configuration wholesale
    (``k``/``max_iterations`` are ignored when it is given).

    Returns the raw per-benchmark evaluation results keyed by analysis
    so callers can post-process them.
    """
    if config is None:
        config = TracerConfig(k=k, max_iterations=max_iterations)
    emit(f"Preparing {len(names)} benchmarks ...")
    instances: Dict[str, BenchmarkInstance] = {
        name: prepare(name) for name in names
    }
    emit(render_table1([instances[name].metrics for name in names]))
    emit("")

    results: Dict[str, Dict[str, object]] = {}
    aggregates = {}
    if jobs > 1:
        from repro.bench.parallel import evaluate_many

        started = time.perf_counter()
        results = evaluate_many(
            instances, ("typestate", "escape"), config, jobs=jobs,
            options=options,
        )
        queries = sum(
            r.query_count for per in results.values() for r in per.values()
        )
        emit(
            f"  evaluated {queries} queries across {len(names)} benchmarks "
            f"in {time.perf_counter() - started:.1f}s (jobs={jobs})"
        )
        failed = [
            unit
            for per in results.values()
            for result in per.values()
            for unit in result.failed_units
        ]
        if failed:
            emit(
                f"  WARNING: {len(failed)} work unit(s) failed permanently "
                f"and are missing from the tables: {'; '.join(failed)}"
            )
        for name in names:
            aggregates[name] = (
                summarize_records(results[name]["typestate"].records),
                summarize_records(results[name]["escape"].records),
            )
    else:
        for name in names:
            started = time.perf_counter()
            results[name] = {
                analysis: evaluate_benchmark(
                    instances[name], analysis, config, options=options
                )
                for analysis in ("typestate", "escape")
            }
            aggregates[name] = (
                summarize_records(results[name]["typestate"].records),
                summarize_records(results[name]["escape"].records),
            )
            queries = sum(r.query_count for r in results[name].values())
            emit(
                f"  {name}: evaluated {queries} queries in "
                f"{time.perf_counter() - started:.1f}s"
            )
    emit("")
    emit(render_figure12(aggregates))
    emit("")
    emit("Table 2: scalability measurements")
    emit(render_table2(aggregates))
    emit("")
    emit("Table 3: cheapest abstraction sizes for proven queries")
    emit(render_table3(aggregates))
    emit("")
    emit("Table 4: cheapest abstraction reuse for proven queries")
    emit(render_table4(aggregates))
    emit("")
    emit("Forward-run cache effectiveness")
    emit(render_cache_stats(results))
    emit("")

    sweep_names = [n for n in SMALLEST if n in instances]
    if sweep_names and k_sweep:
        emit("Figure 13 (k ablation on the smallest benchmarks) ...")
        timings = {}
        for name in sweep_names:
            timings[name] = {}
            for k_value in k_sweep:
                started = time.perf_counter()
                evaluate_benchmark(
                    instances[name],
                    "escape",
                    TracerConfig(k=k_value, max_iterations=max_iterations),
                )
                timings[name][k_value] = time.perf_counter() - started
        emit(render_figure13(timings))
        emit("")

    histograms = {
        name: size_distribution(results[name]["escape"].records)
        for name in LARGEST
        if name in results
    }
    if histograms:
        emit(render_figure14(histograms))
    return results
