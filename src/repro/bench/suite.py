"""The seven-benchmark suite.

Profiles mirror the relative character of the paper's Table 1 suite:
``tsp`` and ``elevator`` are small; ``hedc`` and ``weblech`` are
medium, thread- and sharing-heavy; ``antlr`` is large with deep call
chains and little concurrency; ``avrora`` is the largest with many
classes and workers; ``lusearch`` is large with shared indexes.
Absolute sizes are scaled down so the full evaluation runs on a laptop
in minutes; the *relative* ordering matches the paper.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.bench.generators import BenchmarkProfile, synthesize
from repro.frontend.program import FrontProgram

BENCHMARK_NAMES: Tuple[str, ...] = (
    "tsp",
    "elevator",
    "hedc",
    "weblech",
    "antlr",
    "avrora",
    "lusearch",
)

_PROFILES: Dict[str, BenchmarkProfile] = {
    "tsp": BenchmarkProfile(
        name="tsp",
        seed=101,
        app_classes=2,
        lib_classes=1,
        worker_classes=1,
        fields_per_class=2,
        levels=2,
        methods_per_level=2,
        stmts_per_method=5,
        main_stmts=6,
        publish_weight=1,
        loop_weight=2,
    ),
    "elevator": BenchmarkProfile(
        name="elevator",
        seed=232,
        app_classes=3,
        lib_classes=1,
        worker_classes=1,
        fields_per_class=2,
        levels=2,
        methods_per_level=2,
        stmts_per_method=6,
        main_stmts=7,
        branch_weight=3,
        loop_weight=2,
    ),
    "hedc": BenchmarkProfile(
        name="hedc",
        seed=323,
        app_classes=4,
        lib_classes=3,
        worker_classes=2,
        fields_per_class=2,
        levels=3,
        methods_per_level=2,
        stmts_per_method=6,
        main_stmts=9,
        publish_weight=3,
        load_global_weight=3,
    ),
    "weblech": BenchmarkProfile(
        name="weblech",
        seed=404,
        app_classes=4,
        lib_classes=3,
        worker_classes=2,
        fields_per_class=3,
        levels=3,
        methods_per_level=3,
        stmts_per_method=6,
        main_stmts=10,
        publish_weight=4,
        field_store_weight=4,
    ),
    "antlr": BenchmarkProfile(
        name="antlr",
        seed=535,
        app_classes=6,
        lib_classes=3,
        worker_classes=1,
        fields_per_class=3,
        levels=4,
        methods_per_level=3,
        stmts_per_method=7,
        main_stmts=10,
        calls_per_method=2,
        alias_weight=5,
        publish_weight=1,
    ),
    "avrora": BenchmarkProfile(
        name="avrora",
        seed=626,
        app_classes=9,
        lib_classes=4,
        worker_classes=3,
        fields_per_class=3,
        levels=5,
        methods_per_level=3,
        stmts_per_method=7,
        main_stmts=14,
        calls_per_method=2,
        alias_weight=6,
        publish_weight=2,
    ),
    "lusearch": BenchmarkProfile(
        name="lusearch",
        seed=717,
        app_classes=6,
        lib_classes=4,
        worker_classes=2,
        fields_per_class=3,
        levels=3,
        methods_per_level=3,
        stmts_per_method=7,
        main_stmts=11,
        calls_per_method=2,
        publish_weight=3,
        load_global_weight=3,
    ),
}


def benchmark_profiles() -> Dict[str, BenchmarkProfile]:
    """All benchmark profiles, keyed by name."""
    return dict(_PROFILES)


def benchmark(name: str) -> FrontProgram:
    """Synthesize one benchmark program."""
    try:
        profile = _PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {BENCHMARK_NAMES}"
        ) from None
    return synthesize(profile)


def load_suite() -> Dict[str, FrontProgram]:
    """Synthesize the whole suite."""
    return {name: benchmark(name) for name in BENCHMARK_NAMES}


def scaled_profile(profile: BenchmarkProfile, factor: float) -> BenchmarkProfile:
    """Scale a profile's size knobs by ``factor`` (>= 0.5).

    Used by the scalability study: the same benchmark character at
    growing program sizes."""
    import dataclasses

    if factor < 0.5:
        raise ValueError("scale factor must be >= 0.5")

    def scale(value: int, minimum: int = 1) -> int:
        return max(minimum, round(value * factor))

    return dataclasses.replace(
        profile,
        app_classes=scale(profile.app_classes),
        lib_classes=scale(profile.lib_classes),
        worker_classes=scale(profile.worker_classes),
        levels=min(profile.levels + 2, scale(profile.levels, 2)),
        methods_per_level=scale(profile.methods_per_level),
        stmts_per_method=scale(profile.stmts_per_method, 3),
        main_stmts=scale(profile.main_stmts, 3),
    )


def benchmark_scaled(name: str, factor: float) -> FrontProgram:
    """Synthesize a benchmark at a different size scale."""
    try:
        profile = _PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {BENCHMARK_NAMES}"
        ) from None
    return synthesize(scaled_profile(profile, factor))
