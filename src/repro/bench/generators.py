"""Deterministic synthetic mini-Java program generator.

Each benchmark is synthesised from a :class:`BenchmarkProfile` with a
fixed seed, so the whole evaluation is reproducible bit-for-bit.  The
generator produces the program shapes that exercise both client
analyses the way the paper's Java benchmarks do:

* *aliasing chains* (``y = x; y.m()``) that force the type-state
  analysis to grow must-alias sets to prove queries;
* *heap round-trips* (store then load through fields) that make
  must-alias tracking impossible — the paper's impossible queries;
* *publication* (global stores, thread starts) and *confinement*
  (objects that never escape) mixing provable and unprovable
  thread-escape queries;
* *layered call graphs* (methods at level ``i`` call only level
  ``i + 1``) giving deep, acyclic, fully-inlinable call chains, with
  occasional polymorphic receivers for multi-target dispatch.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.frontend.program import (
    ClassDef,
    FrontProgram,
    MethodDef,
    SAssign,
    SAssignNull,
    SCall,
    SIf,
    SLoadField,
    SLoadGlobal,
    SNew,
    SReturn,
    SStoreField,
    SStoreGlobal,
    SThreadStart,
    SWhile,
    Stmt,
)


@dataclass(frozen=True)
class BenchmarkProfile:
    """Knobs describing one synthetic benchmark."""

    name: str
    seed: int
    app_classes: int = 3
    lib_classes: int = 2
    worker_classes: int = 1
    fields_per_class: int = 2
    levels: int = 3
    methods_per_level: int = 2
    stmts_per_method: int = 6
    main_stmts: int = 8
    calls_per_method: int = 1
    alias_receiver_rate: float = 0.4
    local_pool: int = 6
    heap_call_rate: float = 0.25
    chain_load_rate: float = 0.3
    self_call_rate: float = 0.35
    method_chain_rate: float = 0.5
    double_call_rate: float = 0.3
    globals_count: int = 2
    publish_weight: int = 2
    load_global_weight: int = 2
    field_store_weight: int = 3
    field_load_weight: int = 3
    alias_weight: int = 4
    alloc_weight: int = 3
    null_weight: int = 1
    branch_weight: int = 2
    loop_weight: int = 1
    poly_call_rate: float = 0.2


class _Synthesizer:
    def __init__(self, profile: BenchmarkProfile):
        self.profile = profile
        self.rng = random.Random(profile.seed)
        self.program = FrontProgram()
        # (class, method_name, level) for every generated method.
        self.methods: List[Tuple[str, str, int]] = []
        self.class_fields: Dict[str, Tuple[str, ...]] = {}
        self.fresh_counter = 0

    # -- structure -------------------------------------------------------

    def build(self) -> FrontProgram:
        profile = self.profile
        class_names: List[Tuple[str, bool]] = []  # (name, is_library)
        for i in range(profile.app_classes):
            class_names.append((f"App{i}", False))
        for i in range(profile.lib_classes):
            class_names.append((f"Lib{i}", True))
        worker_names = [f"Worker{i}" for i in range(profile.worker_classes)]

        for name, is_library in class_names:
            fields = tuple(
                f"{name}_f{j}" for j in range(profile.fields_per_class)
            )
            self.class_fields[name] = fields
            self.program.add_class(
                ClassDef(name=name, fields=fields, is_library=is_library)
            )
        for name in worker_names:
            fields = tuple(f"{name}_f{j}" for j in range(profile.fields_per_class))
            self.class_fields[name] = fields
            self.program.add_class(ClassDef(name=name, fields=fields))
        main_cls = self.program.add_class(ClassDef(name="Main"))
        self.class_fields["Main"] = ()

        # Method signatures, layered by level for an acyclic call graph.
        plain = [name for name, _lib in class_names]
        for level in range(1, profile.levels + 1):
            for k in range(profile.methods_per_level):
                cls = plain[self.rng.randrange(len(plain))]
                # Bias towards same-class chains across consecutive
                # levels, enabling `this.m()` call chains whose
                # type-state proofs need deep must-alias tracking.
                if level > 1 and self.rng.random() < profile.method_chain_rate:
                    previous = [
                        c for c, _n, l in self.methods if l == level - 1
                    ]
                    if previous:
                        cls = previous[self.rng.randrange(len(previous))]
                method_name = f"m{level}_{k}"
                params = tuple(f"p{i}" for i in range(self.rng.randint(0, 2)))
                self.program.classes[cls].methods[method_name] = MethodDef(
                    name=method_name, params=params
                )
                self.methods.append((cls, method_name, level))
        # Occasionally duplicate a method name in a second class so a
        # polymorphic receiver produces multiple call targets.
        for cls, method_name, level in list(self.methods):
            if self.rng.random() < profile.poly_call_rate and len(plain) > 1:
                other = plain[self.rng.randrange(len(plain))]
                if other != cls and method_name not in self.program.classes[other].methods:
                    params = self.program.classes[cls].methods[method_name].params
                    self.program.classes[other].methods[method_name] = MethodDef(
                        name=method_name, params=params
                    )
                    self.methods.append((other, method_name, level))

        for name in worker_names:
            self.program.classes[name].methods["run"] = MethodDef(name="run")

        # Bodies.
        for cls, method_name, level in self.methods:
            method = self.program.classes[cls].methods[method_name]
            method.body = self._method_body(cls, method, level)
        for name in worker_names:
            method = self.program.classes[name].methods["run"]
            method.body = self._worker_body(name)
        main_cls.methods["main"] = MethodDef(
            name="main", body=self._main_body(worker_names)
        )
        return self.program.finalize()

    # -- environments ------------------------------------------------------

    def _fresh(self, prefix: str = "t") -> str:
        self.fresh_counter += 1
        return f"{prefix}{self.fresh_counter}"

    def _slot(self, env: Dict[str, Optional[str]]) -> str:
        """A local name from the method's bounded pool.

        Reusing a small pool (as real method bodies do) keeps the
        number of live variables — and with it the disjunctive state
        space of the escape analysis — bounded."""
        return f"v{self.rng.randrange(self.profile.local_pool)}"

    def _pick_local(self, env: Dict[str, Optional[str]]) -> Optional[str]:
        names = sorted(env)
        return names[self.rng.randrange(len(names))] if names else None

    def _pick_typed(self, env: Dict[str, Optional[str]]) -> Optional[str]:
        names = sorted(name for name, cls in env.items() if cls is not None)
        return names[self.rng.randrange(len(names))] if names else None

    # -- bodies ------------------------------------------------------------

    def _method_body(self, cls: str, method: MethodDef, level: int) -> List[Stmt]:
        env: Dict[str, Optional[str]] = {"this": cls}
        for param in method.params:
            env[param] = None
        body = self._statements(
            env, cls, level, self.profile.stmts_per_method, depth=0
        )
        ret = self._pick_local(env)
        body.append(SReturn(ret))
        return body

    def _worker_body(self, cls: str) -> List[Stmt]:
        env: Dict[str, Optional[str]] = {"this": cls}
        body: List[Stmt] = []
        # A worker touches its own fields and shared globals.
        fields = self.class_fields[cls]
        if fields:
            local = self._fresh("w")
            body.append(SLoadField(local, "this", fields[0]))
            env[local] = None
        shared = self._fresh("w")
        body.append(SLoadGlobal(shared, "g0"))
        env[shared] = None
        body.extend(
            self._statements(env, cls, self.profile.levels, 3, depth=0)
        )
        return body

    def _main_body(self, worker_names: List[str]) -> List[Stmt]:
        profile = self.profile
        env: Dict[str, Optional[str]] = {}
        body: List[Stmt] = []
        # Seed the heap with a few application objects.
        app_classes = [
            name
            for name, cls in sorted(self.program.classes.items())
            if not cls.is_library and name != "Main" and not name.startswith("Worker")
        ]
        for name in app_classes[:3]:
            local = self._fresh("o")
            body.append(SNew(local, name))
            env[local] = name
        # Drive every level-1 method from main so the bulk of the
        # program is reachable and queried.
        for target_cls, method_name, tlevel in self.methods:
            if tlevel != 1:
                continue
            receiver = next(
                (n for n, k in sorted(env.items()) if k == target_cls), None
            )
            if receiver is None:
                receiver = self._fresh("d")
                body.append(SNew(receiver, target_cls))
                env[receiver] = target_cls
            params = self.program.classes[target_cls].methods[method_name].params
            args = []
            for _ in params:
                arg = self._pick_local(env)
                args.append(arg if arg is not None else receiver)
            body.append(
                SCall(lhs=None, base=receiver, method=method_name, args=tuple(args))
            )
        body.extend(self._statements(env, "Main", 0, profile.main_stmts, depth=0))
        # Start the workers on fresh objects.
        for worker in worker_names:
            local = self._fresh("wk")
            body.append(SNew(local, worker))
            body.append(SThreadStart(local))
            env[local] = worker
        # A confined epilogue: provable queries live here.
        confined_cls = app_classes[0] if app_classes else None
        if confined_cls and self.class_fields[confined_cls]:
            quiet = self._fresh("priv")
            other = self._fresh("priv")
            field = self.class_fields[confined_cls][0]
            body.append(SNew(quiet, confined_cls))
            body.append(SAssign(other, quiet))
            body.append(SStoreField(other, field, quiet))
            body.append(SLoadField(self._fresh("priv"), quiet, field))
        return body

    def _statements(
        self,
        env: Dict[str, Optional[str]],
        cls: str,
        level: int,
        count: int,
        depth: int,
    ) -> List[Stmt]:
        body: List[Stmt] = []
        for _ in range(count):
            body.extend(self._statement(env, cls, level, depth))
        return body

    def _statement(self, env, cls, level, depth) -> List[Stmt]:
        profile = self.profile
        choices = (
            ["alloc"] * profile.alloc_weight
            + ["alias"] * profile.alias_weight
            + ["null"] * profile.null_weight
            + ["store_field"] * profile.field_store_weight
            + ["load_field"] * profile.field_load_weight
            + ["publish"] * profile.publish_weight
            + ["load_global"] * profile.load_global_weight
            + ["call"] * profile.calls_per_method
            + (["branch"] * profile.branch_weight if depth < 2 else [])
            + (["loop"] * profile.loop_weight if depth < 2 else [])
        )
        kind = choices[self.rng.randrange(len(choices))]
        if kind == "alloc":
            target = sorted(self.class_fields)
            target = target[self.rng.randrange(len(target))]
            local = self._slot(env)
            env[local] = target
            return [SNew(local, target)]
        if kind == "alias":
            source = self._pick_local(env)
            if source is None:
                return []
            local = self._slot(env)
            if local == source:
                return []
            env[local] = env[source]
            return [SAssign(local, source)]
        if kind == "null":
            local = self._pick_local(env)
            if local is None:
                return []
            env[local] = None
            return [SAssignNull(local)]
        if kind == "store_field":
            base = self._pick_typed(env)
            rhs = self._pick_local(env)
            if base is None or rhs is None:
                return []
            fields = self.class_fields.get(env[base], ())
            if not fields:
                return []
            return [SStoreField(base, fields[self.rng.randrange(len(fields))], rhs)]
        if kind == "load_field":
            base = self._pick_typed(env)
            if base is None:
                return []
            fields = self.class_fields.get(env[base], ())
            if not fields:
                return []
            local = self._slot(env)
            if local == base:
                return []
            env[local] = None
            out = [SLoadField(local, base, fields[self.rng.randrange(len(fields))])]
            # A chained access through the loaded reference: proving its
            # thread-escape query needs the holder's site *and* every
            # site stored in the field mapped to L (multi-site cheapest
            # abstractions, the tail of Figure 14).
            if self.rng.random() < self.profile.chain_load_rate:
                all_fields = sorted(
                    f for fs in self.class_fields.values() for f in fs
                )
                if all_fields:
                    second = self._slot(env)
                    if second not in (local, base):
                        env[second] = None
                        out.append(
                            SLoadField(
                                second,
                                local,
                                all_fields[self.rng.randrange(len(all_fields))],
                            )
                        )
            return out
        if kind == "publish":
            rhs = self._pick_local(env)
            if rhs is None:
                return []
            glob = f"g{self.rng.randrange(self.profile.globals_count)}"
            return [SStoreGlobal(glob, rhs)]
        if kind == "load_global":
            local = self._slot(env)
            env[local] = None
            glob = f"g{self.rng.randrange(self.profile.globals_count)}"
            return [SLoadGlobal(local, glob)]
        if kind == "call":
            if self.rng.random() < self.profile.heap_call_rate:
                return self._heap_call_statement(env, cls, level)
            return self._call_statement(env, cls, level)
        if kind == "branch":
            then = self._statements(env, cls, level, 2, depth + 1)
            els = self._statements(env, cls, level, 1, depth + 1)
            return [SIf(then=then, els=els)]
        if kind == "loop":
            inner = self._statements(env, cls, level, 2, depth + 1)
            return [SWhile(body=inner)]
        return []

    def _call_statement(self, env, cls, level) -> List[Stmt]:
        targets = [
            (tcls, name)
            for tcls, name, tlevel in self.methods
            if tlevel == level + 1
        ]
        if not targets:
            return []
        out: List[Stmt] = []
        # Prefer a self-call chain (`this.m()`) when available: proving
        # queries inside such chains forces tracking the whole
        # `this`-binding chain, as in the paper's deep benchmarks.
        this_cls = env.get("this")
        same_class = [t for t in targets if t[0] == this_cls]
        if same_class and self.rng.random() < self.profile.self_call_rate:
            target_cls, method_name = same_class[
                self.rng.randrange(len(same_class))
            ]
            receiver = "this"
        else:
            target_cls, method_name = targets[self.rng.randrange(len(targets))]
            receiver = None
        if receiver is None:
            # Find or make a receiver of the right class.
            receivers = sorted(
                name for name, kls in env.items() if kls == target_cls
            )
            if receivers:
                receiver = receivers[self.rng.randrange(len(receivers))]
            else:
                receiver = self._slot(env)
                env[receiver] = target_cls
                out.append(SNew(receiver, target_cls))
        params = self.program.classes[target_cls].methods[method_name].params
        args = []
        for _ in params:
            arg = self._pick_local(env)
            if arg is None:
                return out
            args.append(arg)
        lhs = None
        if self.rng.random() < 0.5:
            lhs = self._slot(env)
            if lhs == receiver or lhs in args:
                lhs = None
            else:
                env[lhs] = None
        # Occasionally call through a copy of the receiver: proving the
        # type-state query at such a call requires tracking the alias.
        if self.rng.random() < self.profile.alias_receiver_rate:
            alias = self._slot(env)
            if alias != receiver and alias not in args and alias != lhs:
                env[alias] = env[receiver]
                out.append(SAssign(alias, receiver))
                receiver = alias
        out.append(
            SCall(lhs=lhs, base=receiver, method=method_name, args=tuple(args))
        )
        # A second call on the same receiver: its query is provable
        # only by must-alias-tracking the receiver through the first
        # (weakly-updating, if untracked) event.
        if self.rng.random() < self.profile.double_call_rate:
            out.append(
                SCall(lhs=None, base=receiver, method=method_name, args=tuple(args))
            )
        return out

    def _heap_call_statement(self, env, cls, level) -> List[Stmt]:
        """Store a typed object into a field, load it back, and call a
        method on the loaded reference.  The receiver can never be
        must-aliased by the type-state analysis (loads drop variables
        from must-alias sets), so the query at this call site is
        *impossible to prove* — the paper's dominant category."""
        targets = [
            (tcls, name)
            for tcls, name, tlevel in self.methods
            if tlevel == level + 1
        ]
        if not targets:
            return []
        target_cls, method_name = targets[self.rng.randrange(len(targets))]
        holder = self._pick_typed(env)
        if holder is None:
            return []
        holder_fields = self.class_fields.get(env[holder], ())
        if not holder_fields:
            return []
        field = holder_fields[self.rng.randrange(len(holder_fields))]
        obj = self._slot(env)
        if obj == holder:
            return []
        loaded = self._slot(env)
        if loaded in (holder, obj):
            return []
        env[obj] = target_cls
        env[loaded] = None
        params = self.program.classes[target_cls].methods[method_name].params
        args = []
        for _ in params:
            arg = self._pick_local(env)
            if arg is None:
                return []
            args.append(arg)
        return [
            SNew(obj, target_cls),
            SStoreField(holder, field, obj),
            SLoadField(loaded, holder, field),
            SCall(lhs=None, base=loaded, method=method_name, args=tuple(args)),
        ]


def synthesize(profile: BenchmarkProfile) -> FrontProgram:
    """Build the deterministic program described by ``profile``."""
    return _Synthesizer(profile).build()
