"""Process-parallel evaluation of independent TRACER workloads.

The evaluation decomposes naturally: every ``(benchmark, analysis,
client)`` triple is an independent TRACER run (typestate clients track
different allocation sites and share nothing; benchmarks are disjoint
programs), so the harness can fan those units across a process pool
and merge the results deterministically — unit results are
concatenated in the exact order the serial harness would have produced
them, so statuses, abstractions, and iteration counts are
byte-for-byte identical to ``jobs=1`` (only wall-clock fields differ).

Work units are described by *name + unit index*, not by pickled client
objects: each worker process synthesizes the benchmark itself (memoised
per process, and inherited for free on fork-based platforms via
:func:`_seed_instance`), rebuilds the client list, and runs its
assigned unit.  Custom (non-suite) programs ride along as a pickled
:class:`~repro.frontend.program.FrontProgram`.

Scheduling is lease-based work stealing by default
(:mod:`repro.robust.scheduler`): workers claim *tasks* — whole units,
or sub-unit query groups when :attr:`RunOptions.group_size` is set —
off a durable, flock-coordinated lease log, heartbeat while solving,
and durably complete with first-completion-wins dedup; a SIGKILLed or
hung worker's leases expire (or are force-released by the parent
supervisor) and are reclaimed by siblings, and the clause bus
(:mod:`repro.robust.clausebus`) lets a reclaiming worker replay the
dead worker's already-published CEGAR rounds — re-validated clause by
clause — instead of re-running their forward fixpoints.  The PR 4
lock-step wave pool (:mod:`repro.robust.pool`) remains available as
``RunOptions(scheduler="waves")``; in both modes units that keep
failing land in
:attr:`~repro.bench.harness.EvalResult.failed_units` instead of
raising.  Because units are pure functions of ``(benchmark, analysis,
index, config)``, a retried unit reproduces its records bit-for-bit,
so the merge stays deterministic across crashes.  Completed units can
be checkpointed to JSONL (:class:`RunOptions.checkpoint_path`) and a
later run resumed from them (:mod:`repro.robust.checkpoint`) — in
lease mode, resumption additionally skips *query groups* that
completed durably in the lease log even when their unit never
finished.

Entry points:

* :func:`evaluate_benchmark_parallel` — one benchmark, one analysis
  (what ``evaluate_benchmark(..., jobs=N)`` delegates to);
* :func:`evaluate_many` — the full cross product used by
  ``full_report(jobs=N)`` and ``repro eval --jobs N``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import (
    BenchmarkInstance,
    DEFAULT_CONFIG,
    EvalResult,
    analysis_setups,
    counters_from_metrics,
)
from repro.core.stats import CacheCounters, QueryRecord
from repro.core.tracer import ForwardRunCache, Tracer, TracerConfig
from repro.frontend.program import FrontProgram
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs
from repro.obs.events import merge_streams
from repro.obs.sinks import MemorySink
from repro.robust import faults as robust_faults
from repro.robust.checkpoint import (
    CheckpointWriter,
    UnitKey,
    load_checkpoint,
)
from repro.robust.clausebus import ClauseBus, ClauseFeed, ClauseFeedMismatch
from repro.robust.faults import FaultPlan
from repro.robust.leases import TaskKey, payload_fingerprint
from repro.robust.pool import RetryPolicy, UnitOutcome, run_units
from repro.robust.scheduler import SchedulerResult, run_leased

#: The instance memos behind :func:`_seed_instance` / :func:`_instance`
#: now live on the process-wide :class:`~repro.serve.session.AnalysisSession`
#: (forked workers inherit the parent's session, exactly as they
#: inherited the former module-level dicts).


@dataclass(frozen=True)
class RunOptions:
    """Robustness knobs of one parallel evaluation."""

    #: Retry/timeout policy of the crash-surviving pool.
    retry: RetryPolicy = RetryPolicy()
    #: JSONL file to append completed units to (``None`` = off).
    checkpoint_path: Optional[str] = None
    #: Load the checkpoint first and run only the missing units.
    resume: bool = False
    #: Deterministic fault plan shipped to every worker (tests, chaos).
    fault_plan: Optional[FaultPlan] = None
    #: Emit (and checkpoint) per-query verdict certificates.
    certify: bool = False
    #: Scheduling model: ``"leases"`` (the lease-based work-stealing
    #: scheduler, the default) or ``"waves"`` (the PR 4 lock-step pool,
    #: kept as a fallback).
    scheduler: str = "leases"
    #: Lease mode only: split each unit's queries into groups of at
    #: most this many for sub-unit scheduling (``0`` = whole units).
    #: Grouped runs decompose the Section 6 query groups differently,
    #: so records match a serial run *of the same decomposition*, not
    #: the whole-unit serial harness.
    group_size: int = 0
    #: Lease mode: worker heartbeat period (seconds).
    heartbeat_interval: float = 0.25
    #: Lease mode: a lease whose worker has not heartbeat for this long
    #: is expired and claimable by siblings.
    lease_ttl: float = 5.0
    #: Lease log location (default: ``checkpoint_path + ".leases"``, or
    #: a throwaway temp file when not checkpointing).
    lease_path: Optional[str] = None
    #: Lease mode: share learned rounds across workers through the
    #: clause bus (see :mod:`repro.robust.clausebus`).
    clause_bus: bool = True
    #: Lease mode: extra fault-rule specs per worker index (chaos).
    worker_faults: Optional[Tuple[Optional[Tuple[str, ...]], ...]] = None


@dataclass(frozen=True)
class WorkUnit:
    """One independent TRACER workload: a single ``(client, queries)``
    pair of one analysis on one benchmark."""

    benchmark: str
    analysis: str
    index: int  # position in analysis_setups(bench, analysis)
    token: int  # parent-side instance token (for the fork-time memo)
    front: Optional[FrontProgram] = None  # only for non-suite programs

    @property
    def key(self) -> UnitKey:
        """Run-independent identity (the checkpoint key): the seed
        token deliberately does not participate."""
        return (self.benchmark, self.analysis, self.index)


def _seed_instance(bench: BenchmarkInstance) -> int:
    """Register ``bench`` in the process-wide session and return its
    token.  Called in the parent *before* the pool forks, so workers
    start with the instance already in memory.  Fork-based platforms
    inherit the parent's seeded entries; spawn-based platforms fall
    back to preparing from the unit description.  The session also
    keeps a cross-token memo of *suite* benchmarks keyed by name alone:
    the shared pool outlives a single evaluation, so a worker forked
    during evaluation N serves units of evaluation N+1 whose token it
    never saw seeded — suite programs are deterministic functions of
    their name, so the instance synthesized under the old token is
    still the right one."""
    from repro.serve.session import process_session

    return process_session().seed(bench)


def _instance(unit: WorkUnit) -> BenchmarkInstance:
    from repro.serve.session import process_session

    return process_session().instance(unit.benchmark, unit.token, unit.front)


#: ``(records, registry snapshot, trace events, certificates)`` of one
#: work unit.  The snapshot is the unit's scoped metrics registry read
#: once at the end; the event list is empty unless the parent asked for
#: tracing, and the certificate list unless it asked to certify.
UnitResult = Tuple[
    List[QueryRecord], Dict[str, CacheCounters], List[dict], List[dict]
]


def _run_unit(
    unit: WorkUnit,
    config: TracerConfig,
    collect_events: bool = False,
    certify: bool = False,
) -> UnitResult:
    """Worker entry point (wave pool): run one whole unit."""
    return _run_group(unit, None, config, collect_events, certify)


def _run_group(
    unit: WorkUnit,
    group: Optional[Tuple[int, int, int]],
    config: TracerConfig,
    collect_events: bool = False,
    certify: bool = False,
    clause_feed=None,
) -> UnitResult:
    """Worker entry point: run one unit — or, when ``group`` is
    ``(lo, hi, group_index)``, the query slice ``[lo:hi]`` of it —
    under a scoped metrics registry (and, when requested, an in-memory
    trace sink), returning its records in query order plus the registry
    snapshot, the captured event stream, and the stamped verdict
    certificates.  ``clause_feed`` plugs the solve into the cross-worker
    clause bus (lease mode)."""
    bench = _instance(unit)
    # Fault sites for the chaos/retry machinery: a generic one and one
    # addressing this exact unit.  A "corrupt" rule damages the unit's
    # output, which the integrity check below turns into a retryable
    # failure instead of a silent bad merge.
    corrupt = robust_faults.inject("unit")
    corrupt = (
        robust_faults.inject(
            f"unit:{unit.benchmark}:{unit.analysis}:{unit.index}"
        )
        or corrupt
    )
    sink = MemorySink() if collect_events else None
    with obs_metrics.scoped_registry() as registry:
        # Client construction happens inside the scope so the caches
        # it builds (dispatch tables, wp memos) register here.
        client, queries = analysis_setups(bench, unit.analysis)[unit.index]
        group_queries = queries if group is None else queries[group[0]:group[1]]
        if not group_queries:
            return [], {}, [], []
        cache = (
            ForwardRunCache(config.forward_cache_size)
            if config.forward_cache_size
            else None
        )
        store = None
        if certify:
            from repro.robust.certify import CertificateStore

            store = CertificateStore()

        def run():
            attrs = dict(
                benchmark=unit.benchmark,
                analysis=unit.analysis,
                unit=unit.index,
                queries=len(group_queries),
            )
            if group is not None:
                attrs["group"] = group[2]
            with obs.span("workload", **attrs):
                return Tracer(
                    client,
                    config,
                    forward_cache=cache,
                    certificates=store,
                    clause_feed=clause_feed,
                ).solve_all(group_queries)

        if sink is not None:
            # The unit's stable identity doubles as the schema v2
            # trace id, so merged worker streams stay correlated per
            # unit (and `repro trace profile --by-trace` can attribute
            # time to units).
            trace_id = f"unit:{unit.benchmark}:{unit.analysis}:{unit.index}"
            if group is not None:
                trace_id += f":g{group[2]}"
            with obs.tracing(sink, trace_id=trace_id):
                solved = run()
        else:
            solved = run()
        snapshot = registry.snapshot()
    records = [solved[q] for q in group_queries]
    if corrupt:
        records = records[:-1]
    if len(records) != len(group_queries):
        raise RuntimeError(
            f"unit {unit.benchmark}:{unit.analysis}:{unit.index} produced "
            f"{len(records)} records for {len(group_queries)} queries"
        )
    certificates: List[dict] = []
    if store is not None:
        from repro.bench.harness import stamp_certificates

        # Stamp against the unit's *full* query list so ``query_index``
        # is the position in the unit regardless of group decomposition.
        certificates = stamp_certificates(
            store, unit.benchmark, unit.analysis, unit.index, queries
        )
    return (
        records,
        snapshot,
        sink.events if sink is not None else [],
        certificates,
    )


def _execute_unit(task: Tuple, attempt: int) -> UnitResult:
    """Pool-facing wrapper: installs the shipped fault plan (tagged
    with the attempt number, so rules can target first attempts only)
    around :func:`_run_unit`."""
    unit, config, collect_events, certify, plan = task
    if plan is None:
        return _run_unit(unit, config, collect_events, certify)
    with robust_faults.fault_scope(plan, attempt=attempt):
        return _run_unit(unit, config, collect_events, certify)


#: Counters of the most recent lease-scheduled run in this process
#: (claims, steals, expiries, respawns, ...) — read by the bench suite
#: and surfaced as scheduler gauges.
_LAST_SCHEDULER_STATS: Dict[str, int] = {}


def last_scheduler_stats() -> Dict[str, int]:
    """Stats of the most recent lease-scheduled evaluation (empty if
    none ran in this process)."""
    return dict(_LAST_SCHEDULER_STATS)


def _group_payload(
    task: TaskKey, query_ids: Sequence[str], result: UnitResult
) -> Tuple[dict, str]:
    """Serialise one group's :data:`UnitResult` into the JSON payload
    stored in the lease log, plus its semantic fingerprint (records
    with wall-clock zeroed + certificates; metrics and trace events are
    legitimately attempt-dependent and excluded)."""
    from repro.bench.export import record_to_dict

    records, metrics, events, certificates = result
    payload = {
        "task": list(task),
        "queries": list(query_ids),
        "records": [record_to_dict(record) for record in records],
        "metrics": {
            name: {"hits": counters.hits, "misses": counters.misses}
            for name, counters in sorted(metrics.items())
        },
        "events": list(events),
        "certificates": list(certificates),
    }
    normalized = dict(
        payload,
        records=[
            dict(record, time_seconds=0.0) for record in payload["records"]
        ],
    )
    return payload, payload_fingerprint(
        normalized, volatile=("metrics", "events")
    )


def _payload_result(payload: dict) -> UnitResult:
    """Inverse of :func:`_group_payload` (modulo the rounded times)."""
    from repro.bench.export import record_from_dict

    records = [record_from_dict(item) for item in payload.get("records", [])]
    metrics = {
        name: CacheCounters(
            hits=int(entry["hits"]), misses=int(entry["misses"])
        )
        for name, entry in payload.get("metrics", {}).items()
    }
    return (
        records,
        metrics,
        list(payload.get("events", [])),
        list(payload.get("certificates", [])),
    )


def _run_leased(
    units: Sequence[WorkUnit],
    config: TracerConfig,
    options: RunOptions,
    max_workers: int,
) -> Tuple[List[Optional[UnitResult]], List[str], bool]:
    """Run ``units`` on the lease-based work-stealing scheduler
    (:func:`repro.robust.scheduler.run_leased`), honouring both layers
    of durability: the classic unit-granularity checkpoint (written for
    every finished unit, resumable by older tooling) and the lease log
    at group granularity — on ``--resume``, groups that completed
    durably before a crash are taken from the lease log even when their
    unit never finished, so a unit that died 9/10 groups in re-solves
    only the last group.

    Same contract as :func:`_run_resilient`: ``(per-unit results in
    unit order, failed unit descriptions, degraded flag)``.
    """
    import os as _os
    import shutil as _shutil
    import tempfile as _tempfile

    from repro.robust.leases import LeaseConsistencyError

    results: List[Optional[UnitResult]] = [None] * len(units)
    resumed = 0
    if options.resume and options.checkpoint_path:
        completed = load_checkpoint(options.checkpoint_path)
        for position, unit in enumerate(units):
            payload = completed.get(unit.key)
            if payload is not None:
                records, metrics, _attempts, certificates = payload
                results[position] = (records, metrics, [], certificates)
                resumed += 1
    pending = [i for i in range(len(units)) if results[i] is None]
    collect = obs.active()

    # Decompose pending units into group tasks.  The parent already
    # synthesizes every instance (work_units did), so sizing the groups
    # off analysis_setups costs nothing new.
    tasks: List[TaskKey] = []
    bounds_of: Dict[TaskKey, Optional[Tuple[int, int, int]]] = {}
    queries_of: Dict[TaskKey, List[str]] = {}
    position_of: Dict[TaskKey, int] = {}
    unit_tasks: Dict[int, List[TaskKey]] = {}
    size = max(0, options.group_size)
    for position in pending:
        unit = units[position]
        bench = _instance(unit)
        _client, queries = analysis_setups(bench, unit.analysis)[unit.index]
        ids = [str(query) for query in queries]
        count = len(queries)
        if size and count > size:
            groups: List[Optional[Tuple[int, int, int]]] = [
                (lo, min(lo + size, count), gi)
                for gi, lo in enumerate(range(0, count, size))
            ]
        else:
            groups = [None]  # whole unit — identical to the wave shape
        for gi, bounds in enumerate(groups):
            task: TaskKey = (unit.benchmark, unit.analysis, unit.index, gi)
            tasks.append(task)
            bounds_of[task] = bounds
            queries_of[task] = (
                ids if bounds is None else ids[bounds[0]:bounds[1]]
            )
            position_of[task] = position
            unit_tasks.setdefault(position, []).append(task)

    lease_path = options.lease_path
    if lease_path is None and options.checkpoint_path:
        lease_path = options.checkpoint_path + ".leases"
    cleanup: Optional[str] = None
    if lease_path is None:
        cleanup = _tempfile.mkdtemp(prefix="repro-leases-")
        lease_path = _os.path.join(cleanup, "run.leases")
    bus_path = lease_path + ".bus"
    if options.clause_bus and tasks:
        # Parent creates (or truncates) the bus before any worker runs.
        ClauseBus(bus_path, worker="parent", fresh=not options.resume)

    use_bus = options.clause_bus

    def execute(task: TaskKey) -> Tuple[dict, str]:
        position = position_of[task]
        unit = units[position]
        bounds = bounds_of[task]
        feed = None
        if use_bus:
            bus = ClauseBus(bus_path, worker=f"pid-{_os.getpid()}")
            feed = ClauseFeed(bus, scope=":".join(str(p) for p in task))
        try:
            result = _run_group(
                unit, bounds, config, collect, options.certify, feed
            )
        except ClauseFeedMismatch:
            # A drained round failed re-validation: never trust the
            # import — re-solve the whole group cold.
            if obs.active():
                obs.event(
                    "degraded",
                    reason="clause_feed_mismatch",
                    task=":".join(str(p) for p in task),
                )
            result = _run_group(
                unit, bounds, config, collect, options.certify, None
            )
        return _group_payload(task, queries_of[task], result)

    try:
        scheduled: SchedulerResult = run_leased(
            tasks,
            execute,
            lease_path,
            workers=max_workers,
            resume=options.resume,
            heartbeat_interval=options.heartbeat_interval,
            lease_ttl=options.lease_ttl,
            max_attempts=options.retry.max_attempts,
            fault_plan=options.fault_plan,
            worker_faults=options.worker_faults,
        )
    finally:
        if cleanup is not None:
            _shutil.rmtree(cleanup, ignore_errors=True)

    failed: List[str] = []
    writer = (
        CheckpointWriter(options.checkpoint_path)
        if options.checkpoint_path and pending
        else None
    )
    try:
        for position in pending:
            unit = units[position]
            errors = [
                scheduled.failed[task]
                for task in unit_tasks[position]
                if task in scheduled.failed
            ]
            if errors:
                failed.append(
                    f"{unit.benchmark}:{unit.analysis}:{unit.index}: "
                    f"{errors[0]}"
                )
                continue
            unit_records: List[QueryRecord] = []
            unit_metrics: Dict[str, CacheCounters] = {}
            streams: List[List[dict]] = []
            unit_certs: List[dict] = []
            attempts = 1
            for task in unit_tasks[position]:
                payload = scheduled.payloads.get(task)
                if payload is None:
                    raise LeaseConsistencyError(
                        f"task {task!r} neither completed nor failed"
                    )
                if payload.get("queries") != queries_of[task]:
                    raise LeaseConsistencyError(
                        f"lease log records queries "
                        f"{payload.get('queries')!r} for task {task!r} but "
                        f"this evaluation decomposes it as "
                        f"{queries_of[task]!r} — the resumed log belongs to "
                        f"a different run or group size"
                    )
                records, metrics, events, certificates = _payload_result(
                    payload
                )
                unit_records.extend(records)
                for name, counters in metrics.items():
                    unit_metrics[name] = (
                        unit_metrics.get(name, CacheCounters()) + counters
                    )
                if events:
                    streams.append(events)
                unit_certs.extend(certificates)
                attempts = max(attempts, scheduled.attempts.get(task, 1))
            if len(streams) > 1:
                events = merge_streams(streams)
            else:
                events = streams[0] if streams else []
            results[position] = (
                unit_records, unit_metrics, events, unit_certs
            )
            if writer is not None:
                writer.write_unit(
                    unit.key,
                    (unit_records, unit_metrics, attempts, unit_certs),
                )
    finally:
        if writer is not None:
            writer.close()

    stats = dict(scheduled.stats)
    stats["resumed_units"] = resumed
    stats["resumed_tasks"] = scheduled.resumed
    stats["failed_units"] = len(failed)
    global _LAST_SCHEDULER_STATS
    _LAST_SCHEDULER_STATS = stats
    if obs.active():
        registry = obs_metrics.current_registry()
        gauge = getattr(registry, "_scheduler_gauge", None)
        if gauge is None:
            gauge = obs_metrics.Gauge(
                "scheduler",
                "lease scheduler counters of the latest evaluation",
                labelnames=("counter",),
            )
            registry.register_instrument(gauge)
            registry._scheduler_gauge = gauge
        for name, value in sorted(stats.items()):
            gauge.set(float(value), counter=name)
    retried = any(
        attempts > 1 for attempts in scheduled.attempts.values()
    )
    degraded = (
        bool(failed)
        or resumed > 0
        or scheduled.resumed > 0
        or scheduled.stats.get("steals", 0) > 0
        or retried
    )
    if failed and obs.active():
        obs.event("degraded", reason="failed_units", units=failed)
    return results, failed, degraded


def work_units(bench: BenchmarkInstance, analysis: str) -> List[WorkUnit]:
    """Enumerate the independent workloads of one benchmark/analysis in
    the order the serial harness evaluates them."""
    token = _seed_instance(bench)
    front = None if bench.standard else bench.front
    return [
        WorkUnit(bench.name, analysis, index, token, front)
        for index in range(len(analysis_setups(bench, analysis)))
    ]


def _merge(
    bench_name: str,
    analysis: str,
    unit_results: Sequence[Optional[UnitResult]],
    wall_seconds: float,
    degraded: bool = False,
    failed_units: Sequence[str] = (),
) -> EvalResult:
    """Deterministic merge: concatenate unit records in unit order and
    sum the units' registry snapshots name-by-name.  ``None`` entries
    are units that exhausted their retries; their identities are in
    ``failed_units``."""
    records: List[QueryRecord] = []
    metrics: Dict[str, CacheCounters] = {}
    certificates: List[dict] = []
    for unit_result in unit_results:
        if unit_result is None:
            continue
        unit_records, unit_metrics, _events, unit_certs = unit_result
        records.extend(unit_records)
        certificates.extend(unit_certs)
        for name, counters in unit_metrics.items():
            metrics[name] = metrics.get(name, CacheCounters()) + counters
    forward, wp_cache, dispatch_cache = counters_from_metrics(metrics)
    return EvalResult(
        benchmark=bench_name,
        analysis=analysis,
        records=records,
        wall_seconds=wall_seconds,
        forward_hits=forward.hits,
        forward_misses=forward.misses,
        wp_cache=wp_cache,
        dispatch_cache=dispatch_cache,
        metrics=metrics,
        degraded=degraded,
        failed_units=tuple(failed_units),
        certificates=certificates,
    )


def _replay_into_parent(unit_results: Sequence[Optional[UnitResult]]) -> None:
    """Re-emit the workers' captured event streams (merged in unit
    order, span ids re-allocated) into the parent's active trace, and
    append one metric record per merged counter name."""
    context = obs.current()
    if context is None:
        return
    streams = [
        unit_result[2]
        for unit_result in unit_results
        if unit_result is not None and unit_result[2]
    ]
    if streams:
        context.ingest(merge_streams(streams))


def _emit_metrics(result: EvalResult) -> None:
    if not obs.active():
        return
    for name, counters in sorted(result.metrics.items()):
        obs.metric(
            name,
            counters.hits,
            counters.misses,
            benchmark=result.benchmark,
            analysis=result.analysis,
        )


def _run_resilient(
    units: Sequence[WorkUnit],
    config: TracerConfig,
    options: RunOptions,
    max_workers: int,
) -> Tuple[List[Optional[UnitResult]], List[str], bool]:
    """Run ``units`` on the crash-surviving pool, honouring the
    checkpoint.  Returns ``(per-unit results in unit order, failed
    unit descriptions, degraded flag)``.

    Checkpointed units are merged as-is (their worker trace events are
    gone — only fresh units replay spans); fresh completions are
    appended to the checkpoint as they are merged, so an interrupted
    run never loses finished work.
    """
    results: List[Optional[UnitResult]] = [None] * len(units)
    resumed = 0
    if options.resume and options.checkpoint_path:
        completed = load_checkpoint(options.checkpoint_path)
        for position, unit in enumerate(units):
            payload = completed.get(unit.key)
            if payload is not None:
                records, metrics, _attempts, certificates = payload
                results[position] = (records, metrics, [], certificates)
                resumed += 1
    pending = [i for i in range(len(units)) if results[i] is None]
    collect = obs.active()
    tasks = [
        (units[i], config, collect, options.certify, options.fault_plan)
        for i in pending
    ]
    outcomes: List[UnitOutcome] = []
    if tasks:
        outcomes = run_units(
            _execute_unit,
            tasks,
            policy=options.retry,
            max_workers=max_workers,
        )
    failed: List[str] = []
    writer = (
        CheckpointWriter(options.checkpoint_path)
        if options.checkpoint_path
        else None
    )
    try:
        for outcome, position in zip(outcomes, pending):
            unit = units[position]
            if outcome.succeeded:
                results[position] = outcome.result
                if writer is not None:
                    records, metrics, _events, certificates = outcome.result
                    writer.write_unit(
                        unit.key,
                        (records, metrics, outcome.attempts, certificates),
                    )
            else:
                failed.append(
                    f"{unit.benchmark}:{unit.analysis}:{unit.index}: "
                    f"{outcome.error}"
                )
    finally:
        if writer is not None:
            writer.close()
    degraded = bool(failed) or resumed > 0 or any(
        outcome.retried for outcome in outcomes
    )
    if failed and obs.active():
        obs.event("degraded", reason="failed_units", units=failed)
    return results, failed, degraded


def evaluate_benchmark_parallel(
    bench: BenchmarkInstance,
    analysis: str,
    config: TracerConfig = DEFAULT_CONFIG,
    jobs: int = 2,
    options: Optional[RunOptions] = None,
) -> EvalResult:
    """Parallel counterpart of ``evaluate_benchmark``: same records in
    the same order, computed by up to ``jobs`` worker processes that
    are retried/respawned on crashes rather than trusted."""
    from repro.bench.harness import evaluate_benchmark

    options = options if options is not None else RunOptions()
    units = work_units(bench, analysis)
    # The serial fast path would silently drop checkpointing and fault
    # injection, so it only applies when no robustness option is set;
    # a grouped run (group_size > 0) always goes through the scheduler
    # so a 1-worker run is the exact oracle for the N-worker one.
    robust = (
        options.checkpoint_path is not None
        or options.resume
        or options.fault_plan is not None
        or options.group_size > 0
    )
    if jobs <= 1 and options.group_size == 0:
        return evaluate_benchmark(bench, analysis, config, options=options)
    if jobs > 1 and len(units) <= 1 and not robust:
        return evaluate_benchmark(bench, analysis, config, options=options)
    started = time.perf_counter()
    runner = (
        _run_leased if options.scheduler == "leases" else _run_resilient
    )
    unit_results, failed, degraded = runner(
        units, config, options, max_workers=max(1, min(jobs, len(units)))
    )
    _replay_into_parent(unit_results)
    result = _merge(
        bench.name,
        analysis,
        unit_results,
        time.perf_counter() - started,
        degraded=degraded,
        failed_units=failed,
    )
    _emit_metrics(result)
    return result


def evaluate_many(
    instances: Dict[str, BenchmarkInstance],
    analyses: Sequence[str],
    config: TracerConfig = DEFAULT_CONFIG,
    jobs: int = 1,
    options: Optional[RunOptions] = None,
) -> Dict[str, Dict[str, EvalResult]]:
    """Evaluate ``analyses`` over every benchmark in ``instances`` with
    one shared worker pool.

    All units of all ``(benchmark, analysis)`` pairs are fanned out
    together, so a long escape run on one benchmark overlaps the many
    small typestate units of another.  The result mapping (and every
    record list in it) is ordered exactly as the serial nested loops
    would produce it — including across worker crashes, retries, and
    checkpoint resumption.
    """
    options = options if options is not None else RunOptions()
    pairs = [
        (name, analysis) for name in instances for analysis in analyses
    ]
    if jobs <= 1 and options.group_size == 0:
        from repro.bench.harness import evaluate_benchmark

        return_serial: Dict[str, Dict[str, EvalResult]] = {}
        for name, analysis in pairs:
            return_serial.setdefault(name, {})[analysis] = evaluate_benchmark(
                instances[name], analysis, config, options=options
            )
        return return_serial

    started = time.perf_counter()
    units_of: Dict[Tuple[str, str], List[WorkUnit]] = {}
    tokens: Dict[str, int] = {}
    for name, analysis in pairs:
        bench = instances[name]
        # One seed token per instance, shared by its analyses.
        if name not in tokens:
            tokens[name] = _seed_instance(bench)
        front = None if bench.standard else bench.front
        units_of[(name, analysis)] = [
            WorkUnit(name, analysis, index, tokens[name], front)
            for index in range(len(analysis_setups(bench, analysis)))
        ]
    flat: List[WorkUnit] = []
    spans: Dict[Tuple[str, str], Tuple[int, int]] = {}
    for pair, units in units_of.items():
        spans[pair] = (len(flat), len(flat) + len(units))
        flat.extend(units)
    runner = (
        _run_leased if options.scheduler == "leases" else _run_resilient
    )
    flat_results, failed, degraded = runner(
        flat, config, options, max_workers=max(1, jobs)
    )
    wall = time.perf_counter() - started
    _replay_into_parent(flat_results)
    out: Dict[str, Dict[str, EvalResult]] = {}
    for name, analysis in pairs:
        lo, hi = spans[(name, analysis)]
        prefix = f"{name}:{analysis}:"
        result = _merge(
            name,
            analysis,
            flat_results[lo:hi],
            wall,
            degraded=degraded,
            failed_units=[f for f in failed if f.startswith(prefix)],
        )
        _emit_metrics(result)
        out.setdefault(name, {})[analysis] = result
    return out
