"""Process-parallel evaluation of independent TRACER workloads.

The evaluation decomposes naturally: every ``(benchmark, analysis,
client)`` triple is an independent TRACER run (typestate clients track
different allocation sites and share nothing; benchmarks are disjoint
programs), so the harness can fan those units across a
:class:`concurrent.futures.ProcessPoolExecutor` and merge the results
deterministically — unit results are concatenated in the exact order
the serial harness would have produced them, so statuses, abstractions,
and iteration counts are byte-for-byte identical to ``jobs=1`` (only
wall-clock fields differ).

Work units are described by *name + unit index*, not by pickled client
objects: each worker process synthesizes the benchmark itself (memoised
per process, and inherited for free on fork-based platforms via
:func:`_seed_instance`), rebuilds the client list, and runs its
assigned unit.  Custom (non-suite) programs ride along as a pickled
:class:`~repro.frontend.program.FrontProgram`.

Entry points:

* :func:`evaluate_benchmark_parallel` — one benchmark, one analysis
  (what ``evaluate_benchmark(..., jobs=N)`` delegates to);
* :func:`evaluate_many` — the full cross product used by
  ``full_report(jobs=N)`` and ``repro eval --jobs N``.
"""

from __future__ import annotations

import itertools
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import (
    BenchmarkInstance,
    DEFAULT_CONFIG,
    EvalResult,
    analysis_setups,
    counters_from_metrics,
    prepare,
)
from repro.core.stats import CacheCounters, QueryRecord
from repro.core.tracer import ForwardRunCache, Tracer, TracerConfig
from repro.frontend.program import FrontProgram
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs
from repro.obs.events import merge_streams
from repro.obs.sinks import MemorySink

#: Unique tokens naming one parent-side ``BenchmarkInstance`` per
#: evaluation call; see :func:`_seed_instance`.
_seed_tokens = itertools.count()


@dataclass(frozen=True)
class WorkUnit:
    """One independent TRACER workload: a single ``(client, queries)``
    pair of one analysis on one benchmark."""

    benchmark: str
    analysis: str
    index: int  # position in analysis_setups(bench, analysis)
    token: int  # parent-side instance token (for the fork-time memo)
    front: Optional[FrontProgram] = None  # only for non-suite programs


#: Per-process memo of prepared benchmarks, keyed by (name, token).
#: Fork-based platforms inherit the parent's seeded entries, so workers
#: skip re-synthesizing the program; spawn-based platforms fall back to
#: preparing from the unit description.
_INSTANCES: Dict[Tuple[str, int], BenchmarkInstance] = {}


def _seed_instance(bench: BenchmarkInstance) -> int:
    """Register ``bench`` in the process-local memo and return its
    token.  Called in the parent *before* the pool forks, so workers
    start with the instance already in memory."""
    token = next(_seed_tokens)
    _INSTANCES[(bench.name, token)] = bench
    return token


def _instance(unit: WorkUnit) -> BenchmarkInstance:
    key = (unit.benchmark, unit.token)
    bench = _INSTANCES.get(key)
    if bench is None:
        bench = prepare(unit.benchmark, unit.front)
        _INSTANCES[key] = bench
    return bench


#: ``(records, registry snapshot, trace events)`` of one work unit.
#: The snapshot is the unit's scoped metrics registry read once at the
#: end; the event list is empty unless the parent asked for tracing.
UnitResult = Tuple[List[QueryRecord], Dict[str, CacheCounters], List[dict]]


def _run_unit(
    unit: WorkUnit, config: TracerConfig, collect_events: bool = False
) -> UnitResult:
    """Worker entry point: run one unit under a scoped metrics
    registry (and, when requested, an in-memory trace sink), returning
    its records in query order plus the registry snapshot and the
    captured event stream."""
    bench = _instance(unit)
    sink = MemorySink() if collect_events else None
    with obs_metrics.scoped_registry() as registry:
        # Client construction happens inside the scope so the caches
        # it builds (dispatch tables, wp memos) register here.
        client, queries = analysis_setups(bench, unit.analysis)[unit.index]
        if not queries:
            return [], {}, []
        cache = (
            ForwardRunCache(config.forward_cache_size)
            if config.forward_cache_size
            else None
        )

        def run():
            with obs.span(
                "workload",
                benchmark=unit.benchmark,
                analysis=unit.analysis,
                unit=unit.index,
                queries=len(queries),
            ):
                return Tracer(client, config, forward_cache=cache).solve_all(
                    queries
                )

        if sink is not None:
            with obs.tracing(sink):
                solved = run()
        else:
            solved = run()
        snapshot = registry.snapshot()
    records = [solved[q] for q in queries]
    return records, snapshot, sink.events if sink is not None else []


def work_units(bench: BenchmarkInstance, analysis: str) -> List[WorkUnit]:
    """Enumerate the independent workloads of one benchmark/analysis in
    the order the serial harness evaluates them."""
    token = _seed_instance(bench)
    front = None if bench.standard else bench.front
    return [
        WorkUnit(bench.name, analysis, index, token, front)
        for index in range(len(analysis_setups(bench, analysis)))
    ]


def _merge(
    bench_name: str,
    analysis: str,
    unit_results: Sequence[UnitResult],
    wall_seconds: float,
) -> EvalResult:
    """Deterministic merge: concatenate unit records in unit order and
    sum the units' registry snapshots name-by-name."""
    records: List[QueryRecord] = []
    metrics: Dict[str, CacheCounters] = {}
    for unit_records, unit_metrics, _events in unit_results:
        records.extend(unit_records)
        for name, counters in unit_metrics.items():
            metrics[name] = metrics.get(name, CacheCounters()) + counters
    forward, wp_cache, dispatch_cache = counters_from_metrics(metrics)
    return EvalResult(
        benchmark=bench_name,
        analysis=analysis,
        records=records,
        wall_seconds=wall_seconds,
        forward_hits=forward.hits,
        forward_misses=forward.misses,
        wp_cache=wp_cache,
        dispatch_cache=dispatch_cache,
        metrics=metrics,
    )


def _replay_into_parent(unit_results: Sequence[UnitResult]) -> None:
    """Re-emit the workers' captured event streams (merged in unit
    order, span ids re-allocated) into the parent's active trace, and
    append one metric record per merged counter name."""
    context = obs.current()
    if context is None:
        return
    streams = [events for _records, _metrics, events in unit_results if events]
    if streams:
        context.ingest(merge_streams(streams))


def _emit_metrics(result: EvalResult) -> None:
    if not obs.active():
        return
    for name, counters in sorted(result.metrics.items()):
        obs.metric(
            name,
            counters.hits,
            counters.misses,
            benchmark=result.benchmark,
            analysis=result.analysis,
        )


def evaluate_benchmark_parallel(
    bench: BenchmarkInstance,
    analysis: str,
    config: TracerConfig = DEFAULT_CONFIG,
    jobs: int = 2,
) -> EvalResult:
    """Parallel counterpart of ``evaluate_benchmark``: same records in
    the same order, computed by up to ``jobs`` worker processes."""
    from repro.bench.harness import evaluate_benchmark

    units = work_units(bench, analysis)
    if jobs <= 1 or len(units) <= 1:
        return evaluate_benchmark(bench, analysis, config)
    started = time.perf_counter()
    collect = obs.active()
    with ProcessPoolExecutor(max_workers=min(jobs, len(units))) as pool:
        unit_results = list(
            pool.map(
                _run_unit,
                units,
                itertools.repeat(config),
                itertools.repeat(collect),
            )
        )
    _replay_into_parent(unit_results)
    result = _merge(
        bench.name, analysis, unit_results, time.perf_counter() - started
    )
    _emit_metrics(result)
    return result


def evaluate_many(
    instances: Dict[str, BenchmarkInstance],
    analyses: Sequence[str],
    config: TracerConfig = DEFAULT_CONFIG,
    jobs: int = 1,
) -> Dict[str, Dict[str, EvalResult]]:
    """Evaluate ``analyses`` over every benchmark in ``instances`` with
    one shared worker pool.

    All units of all ``(benchmark, analysis)`` pairs are fanned out
    together, so a long escape run on one benchmark overlaps the many
    small typestate units of another.  The result mapping (and every
    record list in it) is ordered exactly as the serial nested loops
    would produce it.
    """
    pairs = [
        (name, analysis) for name in instances for analysis in analyses
    ]
    if jobs <= 1:
        from repro.bench.harness import evaluate_benchmark

        return_serial: Dict[str, Dict[str, EvalResult]] = {}
        for name, analysis in pairs:
            return_serial.setdefault(name, {})[analysis] = evaluate_benchmark(
                instances[name], analysis, config
            )
        return return_serial

    started = time.perf_counter()
    units_of: Dict[Tuple[str, str], List[WorkUnit]] = {}
    tokens: Dict[str, int] = {}
    for name, analysis in pairs:
        bench = instances[name]
        # One seed token per instance, shared by its analyses.
        if name not in tokens:
            tokens[name] = _seed_instance(bench)
        front = None if bench.standard else bench.front
        units_of[(name, analysis)] = [
            WorkUnit(name, analysis, index, tokens[name], front)
            for index in range(len(analysis_setups(bench, analysis)))
        ]
    flat: List[WorkUnit] = []
    spans: Dict[Tuple[str, str], Tuple[int, int]] = {}
    for pair, units in units_of.items():
        spans[pair] = (len(flat), len(flat) + len(units))
        flat.extend(units)
    collect = obs.active()
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        flat_results = list(
            pool.map(
                _run_unit,
                flat,
                itertools.repeat(config),
                itertools.repeat(collect),
            )
        )
    wall = time.perf_counter() - started
    _replay_into_parent(flat_results)
    out: Dict[str, Dict[str, EvalResult]] = {}
    for name, analysis in pairs:
        lo, hi = spans[(name, analysis)]
        result = _merge(name, analysis, flat_results[lo:hi], wall)
        _emit_metrics(result)
        out.setdefault(name, {})[analysis] = result
    return out
