"""Text renderers for the paper's tables (1-4).

Each renderer takes the aggregates produced by the harness and prints
the same rows/columns the paper reports, so runs can be compared
side-by-side with the published numbers (shape, not absolute values).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.stats import EvalAggregate, MinMaxAvg
from repro.frontend.metrics import ProgramMetrics


def _format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def _mma(value: Optional[MinMaxAvg], fmt: str = "{:.1f}") -> Tuple[str, str, str]:
    if value is None:
        return ("-", "-", "-")
    return (
        str(value.minimum),
        str(value.maximum),
        fmt.format(value.average),
    )


def _mma_time(value: Optional[MinMaxAvg]) -> Tuple[str, str, str]:
    if value is None:
        return ("-", "-", "-")
    return tuple(_format_seconds(v) for v in (value.minimum, value.maximum, value.average))


def _format_seconds(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    if seconds >= 1:
        return f"{seconds:.1f}s"
    return f"{seconds * 1000:.0f}ms"


def render_table1(metrics: Sequence[ProgramMetrics]) -> str:
    """Table 1: benchmark statistics.

    Bytecode/KLOC columns of the paper are replaced by honest IR
    proxies (statement and inlined-command counts); the last two
    columns are ``log2`` of the abstraction-family sizes exactly as in
    the paper.
    """
    headers = [
        "benchmark",
        "classes app",
        "classes total",
        "methods app",
        "methods total",
        "stmts app",
        "stmts total",
        "reachable",
        "inlined cmds",
        "log2|P| ts",
        "log2|P| esc",
    ]
    rows = [
        [
            m.name,
            str(m.app_classes),
            str(m.total_classes),
            str(m.app_methods),
            str(m.total_methods),
            str(m.app_statements),
            str(m.total_statements),
            str(m.reachable_methods),
            str(m.inlined_commands),
            str(m.typestate_log2_abstractions),
            str(m.escape_log2_abstractions),
        ]
        for m in metrics
    ]
    return _format_table(headers, rows)


AggPair = Tuple[EvalAggregate, EvalAggregate]  # (typestate, escape)


def render_cache_stats(results) -> str:
    """Cache effectiveness per benchmark and analysis.

    ``results`` is the ``full_report`` result mapping: per benchmark, a
    mapping from analysis name to
    :class:`~repro.bench.harness.EvalResult`.  ``fwd hits``/``fwd
    misses`` count engine-level forward fixpoints served from / added
    to the cache; ``round hits`` counts query-rounds that rode a cached
    run (one cached run can serve a whole query group, so ``round
    hits >= fwd hits``).  ``wp`` is the backward wp memo (one miss =
    one weakest precondition derived from a case table) and ``disp``
    the compiled-dispatch cache (one miss = one command's table
    compiled and partition-checked).
    """
    headers = [
        "benchmark",
        "analysis",
        "fwd hits",
        "fwd misses",
        "hit rate",
        "round hits",
        "rounds",
        "wp rate",
        "disp rate",
    ]
    rows = []
    for name, per_analysis in results.items():
        for analysis, result in per_analysis.items():
            rounds = sum(r.forward_runs for r in result.records)
            round_hits = sum(r.forward_cache_hits for r in result.records)
            rows.append(
                [
                    name,
                    analysis,
                    str(result.forward_hits),
                    str(result.forward_misses),
                    f"{result.forward_hit_rate:.0%}",
                    str(round_hits),
                    str(rounds),
                    f"{result.wp_cache.hit_rate:.0%}",
                    f"{result.dispatch_cache.hit_rate:.0%}",
                ]
            )
    return _format_table(headers, rows)


def render_table2(results: Dict[str, AggPair]) -> str:
    """Table 2: iteration statistics (proven vs impossible, per client)
    plus thread-escape running times."""
    headers = [
        "benchmark",
        "ts prov it min/max/avg",
        "ts imp it min/max/avg",
        "esc prov it min/max/avg",
        "esc imp it min/max/avg",
        "esc prov time min/max/avg",
        "esc imp time min/max/avg",
    ]
    rows = []
    for name, (ts, esc) in results.items():
        rows.append(
            [
                name,
                "/".join(_mma(ts.iterations_proven)),
                "/".join(_mma(ts.iterations_impossible)),
                "/".join(_mma(esc.iterations_proven)),
                "/".join(_mma(esc.iterations_impossible)),
                "/".join(_mma_time(esc.time_proven)),
                "/".join(_mma_time(esc.time_impossible)),
            ]
        )
    return _format_table(headers, rows)


def render_table3(results: Dict[str, AggPair]) -> str:
    """Table 3: cheapest-abstraction sizes for proven queries."""
    headers = [
        "benchmark",
        "ts size min",
        "ts size max",
        "ts size avg",
        "esc size min",
        "esc size max",
        "esc size avg",
    ]
    rows = []
    for name, (ts, esc) in results.items():
        ts_cells = _mma(ts.abstraction_sizes)
        esc_cells = _mma(esc.abstraction_sizes)
        rows.append([name, *ts_cells, *esc_cells])
    return _format_table(headers, rows)


def render_table4(results: Dict[str, AggPair]) -> str:
    """Table 4: cheapest-abstraction reuse (query groups sharing one
    cheapest abstraction)."""
    headers = [
        "benchmark",
        "ts #groups",
        "ts min",
        "ts max",
        "ts avg",
        "esc #groups",
        "esc min",
        "esc max",
        "esc avg",
    ]
    rows = []
    for name, (ts, esc) in results.items():
        rows.append(
            [
                name,
                str(ts.groups.group_count),
                str(ts.groups.minimum),
                str(ts.groups.maximum),
                f"{ts.groups.average:.1f}",
                str(esc.groups.group_count),
                str(esc.groups.minimum),
                str(esc.groups.maximum),
                f"{esc.groups.average:.1f}",
            ]
        )
    return _format_table(headers, rows)
