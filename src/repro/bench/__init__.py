"""Benchmark suite, evaluation harness, and table/figure renderers.

The paper evaluates on seven real-world concurrent Java programs (tsp,
elevator, hedc, weblech, antlr, avrora, lusearch) analysed through
Chord.  Those binaries and the JDK are not reproducible offline, so
this package synthesises seven deterministic mini-Java programs whose
*profiles* mirror the originals' characters (relative size, thread
usage, sharing behaviour, call depth); queries are generated
pervasively exactly as in Section 6.
"""

from repro.bench.generators import BenchmarkProfile, synthesize
from repro.bench.suite import BENCHMARK_NAMES, benchmark, benchmark_profiles, load_suite
from repro.bench.harness import (
    BenchmarkInstance,
    EvalResult,
    escape_setup,
    evaluate_benchmark,
    prepare,
    typestate_setup,
)
from repro.bench.tables import (
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)
from repro.bench.export import export_json, record_to_dict, results_to_dict
from repro.bench.figures import render_figure12, render_figure13, render_figure14
from repro.bench.report import full_report

__all__ = [
    "BENCHMARK_NAMES",
    "BenchmarkInstance",
    "BenchmarkProfile",
    "EvalResult",
    "benchmark",
    "benchmark_profiles",
    "escape_setup",
    "evaluate_benchmark",
    "export_json",
    "full_report",
    "load_suite",
    "prepare",
    "record_to_dict",
    "render_figure12",
    "render_figure13",
    "render_figure14",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "results_to_dict",
    "synthesize",
    "typestate_setup",
]
