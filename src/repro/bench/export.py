"""JSON export of evaluation results.

Makes the harness scriptable: per-query records and per-benchmark
aggregates serialise to plain JSON for downstream plotting or
regression tracking (``repro eval --json out.json`` on the CLI).
"""

from __future__ import annotations

import json
from typing import Dict, Mapping

from repro.bench.harness import EvalResult
from repro.core.stats import (
    EvalAggregate,
    MinMaxAvg,
    QueryRecord,
    QueryStatus,
    summarize_records,
)


def record_to_dict(record: QueryRecord) -> dict:
    return {
        "query": record.query_id,
        "status": record.status.value,
        "iterations": record.iterations,
        "abstraction": (
            sorted(record.abstraction) if record.abstraction is not None else None
        ),
        "abstraction_cost": record.abstraction_cost,
        "time_seconds": round(record.time_seconds, 6),
        "max_disjuncts": record.max_disjuncts,
        "forward_runs": record.forward_runs,
        "forward_cache_hits": record.forward_cache_hits,
    }


def record_from_dict(data: Mapping) -> QueryRecord:
    """Inverse of :func:`record_to_dict` (modulo the 6-decimal time
    rounding) — what checkpoint resumption uses to rehydrate records."""
    abstraction = data.get("abstraction")
    return QueryRecord(
        query_id=data["query"],
        status=QueryStatus(data["status"]),
        iterations=data["iterations"],
        abstraction=frozenset(abstraction) if abstraction is not None else None,
        abstraction_cost=data.get("abstraction_cost"),
        time_seconds=data.get("time_seconds", 0.0),
        max_disjuncts=data.get("max_disjuncts", 0),
        forward_runs=data.get("forward_runs", 0),
        forward_cache_hits=data.get("forward_cache_hits", 0),
    )


def _mma_to_dict(stats: MinMaxAvg) -> dict:
    return {
        "min": stats.minimum,
        "max": stats.maximum,
        "avg": round(stats.average, 4),
    }


def aggregate_to_dict(aggregate: EvalAggregate) -> dict:
    return {
        "total": aggregate.total,
        "proven": aggregate.proven,
        "impossible": aggregate.impossible,
        "unresolved": aggregate.exhausted,
        "resolved_fraction": round(aggregate.resolved_fraction, 4),
        "iterations_proven": (
            _mma_to_dict(aggregate.iterations_proven)
            if aggregate.iterations_proven
            else None
        ),
        "iterations_impossible": (
            _mma_to_dict(aggregate.iterations_impossible)
            if aggregate.iterations_impossible
            else None
        ),
        "abstraction_sizes": (
            _mma_to_dict(aggregate.abstraction_sizes)
            if aggregate.abstraction_sizes
            else None
        ),
        "total_time_seconds": round(aggregate.total_time_seconds, 4),
        "forward_runs": aggregate.forward_runs,
        "forward_cache_hits": aggregate.forward_cache_hits,
        "forward_cache_hit_rate": round(aggregate.forward_cache_hit_rate, 4),
        "groups": {
            "count": aggregate.groups.group_count,
            "min": aggregate.groups.minimum,
            "max": aggregate.groups.maximum,
            "avg": round(aggregate.groups.average, 4),
        },
    }


def results_to_dict(results: Mapping[str, Mapping[str, EvalResult]]) -> dict:
    """Serialise a full evaluation (``full_report``'s return value)."""
    out: Dict[str, dict] = {}
    for benchmark, per_analysis in results.items():
        out[benchmark] = {}
        for analysis, result in per_analysis.items():
            aggregate = summarize_records(result.records)
            out[benchmark][analysis] = {
                "wall_seconds": round(result.wall_seconds, 4),
                "degraded": result.degraded,
                "failed_units": list(result.failed_units),
                "certificates": list(result.certificates),
                "forward_cache": {
                    "hits": result.forward_hits,
                    "misses": result.forward_misses,
                    "hit_rate": round(result.forward_hit_rate, 4),
                },
                "wp_cache": {
                    "hits": result.wp_cache.hits,
                    "misses": result.wp_cache.misses,
                    "hit_rate": round(result.wp_cache.hit_rate, 4),
                },
                "dispatch_cache": {
                    "hits": result.dispatch_cache.hits,
                    "misses": result.dispatch_cache.misses,
                    "hit_rate": round(result.dispatch_cache.hit_rate, 4),
                },
                "aggregate": aggregate_to_dict(aggregate),
                "records": [record_to_dict(r) for r in result.records],
            }
    return out


def export_json(results: Mapping[str, Mapping[str, EvalResult]], path: str) -> None:
    """Write a full evaluation to ``path`` as pretty-printed JSON."""
    with open(path, "w") as handle:
        json.dump(results_to_dict(results), handle, indent=2, sort_keys=True)
        handle.write("\n")
