"""Text renderers for the paper's figures (12, 13, 14).

Figures are rendered as labelled ASCII charts: precision stacks
(Figure 12), per-``k`` running-time bars (Figure 13), and cheapest-
abstraction size histograms (Figure 14).
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple

from repro.core.stats import EvalAggregate

_BAR_WIDTH = 40


def _bar(fraction: float, width: int = _BAR_WIDTH, char: str = "#") -> str:
    return char * max(0, round(fraction * width))


def render_figure12(results: Dict[str, Tuple[EvalAggregate, EvalAggregate]]) -> str:
    """Figure 12: per-benchmark precision — fraction of queries proven
    (``#``), shown impossible (``x``), and unresolved (``.``)."""
    lines = ["Figure 12: query resolution (#=proven, x=impossible, .=unresolved)"]
    for analysis_index, analysis in enumerate(("typestate", "thread-escape")):
        lines.append(f"-- {analysis} --")
        for name, pair in results.items():
            agg = pair[analysis_index]
            if agg.total == 0:
                lines.append(f"{name:>10} (no queries)")
                continue
            proven = agg.proven / agg.total
            impossible = agg.impossible / agg.total
            unresolved = agg.exhausted / agg.total
            bar = (
                _bar(proven, char="#")
                + _bar(impossible, char="x")
                + _bar(unresolved, char=".")
            )
            lines.append(
                f"{name:>10} [{bar:<{_BAR_WIDTH}}] "
                f"{agg.total:4d} queries: {agg.proven} proven, "
                f"{agg.impossible} impossible, {agg.exhausted} unresolved"
            )
    return "\n".join(lines)


def render_figure13(timings: Mapping[str, Mapping[object, float]]) -> str:
    """Figure 13: thread-escape running time per beam width ``k``.

    ``timings[benchmark][k]`` is total seconds for resolving all
    queries with that ``k`` (``None`` key = beam disabled)."""
    lines = ["Figure 13: thread-escape running time by beam width k"]
    peak = max(
        (seconds for per_k in timings.values() for seconds in per_k.values()),
        default=1.0,
    )
    for name, per_k in timings.items():
        lines.append(f"{name}:")
        for k in sorted(per_k, key=lambda v: (v is None, v)):
            seconds = per_k[k]
            label = "k=all" if k is None else f"k={k}"
            lines.append(
                f"  {label:>6} [{_bar(seconds / peak):<{_BAR_WIDTH}}] {seconds:.2f}s"
            )
    return "\n".join(lines)


def render_figure14(histograms: Mapping[str, Mapping[int, int]]) -> str:
    """Figure 14: distribution of cheapest-abstraction sizes for proven
    thread-escape queries (largest benchmarks)."""
    lines = ["Figure 14: cheapest-abstraction size distribution (thread-escape)"]
    for name, histogram in histograms.items():
        lines.append(f"{name}:")
        total = sum(histogram.values()) or 1
        for size in sorted(histogram):
            count = histogram[size]
            lines.append(
                f"  size {size:>3} [{_bar(count / total):<{_BAR_WIDTH}}] {count}"
            )
    return "\n".join(lines)
