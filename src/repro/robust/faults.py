"""Deterministic, replayable fault injection.

Every failure path the robustness layer handles — a crashing client, a
formula blow-up, a hung or killed worker — is exercised through a
:class:`FaultPlan`: an ordered set of :class:`FaultRule` values keyed
on the *site names* the codebase already uses for its observability
spans (``"forward_run"``, ``"extract"``, ``"choose"``, ``"backward"``)
plus the bench-harness unit sites (``"unit"`` and
``"unit:<benchmark>:<analysis>:<index>"``) and the serving layer's
sites (``"serve.worker"`` — evaluated inside a pool worker per
request; ``"serve.worker_kill"`` — a ``corrupt`` match tells the
supervisor to SIGKILL the in-flight worker mid-solve;
``"serve.reply"`` — a ``corrupt`` match truncates the daemon's reply
bytes; ``"serve.transport"`` — evaluated client-side per attempt;
``"store.compact.write"`` / ``"store.compact.rename"`` /
``"store.compact.done"`` — the compaction kill-matrix windows).

Rules fire on deterministic per-process hit counters — "the Nth time
this site is reached" — and can additionally be pinned to a work-unit
*attempt* number, which is the worker-independent way to say "fail the
first attempt, succeed on retry" (hit counters live per process, and a
retried unit may land on any worker).  A plan is therefore replayable:
the same plan on the same workload fires at the same sites in the same
order, and each firing emits a ``fault_injected`` trace event.

Actions:

``raise``
    Raise the configured exception (:class:`InjectedFault` by default;
    ``error="explosion"`` raises the real
    :class:`~repro.core.formula.FormulaExplosion` so the degradation
    ladder is exercised end to end).

``delay``
    Sleep for ``delay`` seconds (a slow dependency / GC pause stand-in;
    with a cooperative deadline installed this is how deadline overruns
    are simulated).

``kill``
    ``SIGKILL`` the current process — only meaningful inside a pool
    worker, where it surfaces as ``BrokenProcessPool`` in the parent.

``corrupt``
    Do not raise; instead :func:`inject` returns the string
    ``"corrupt"`` and the call site opts in to producing damaged output
    (the bench worker truncates its unit records, which the checkpoint
    loader and merge must survive).

Plans install ambiently (:class:`fault_scope`), mirroring
:mod:`repro.robust.budget`; with no plan installed :func:`inject` is a
single global read.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import trace as obs

__all__ = [
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "current_plan",
    "fault_scope",
    "inject",
]


class InjectedFault(RuntimeError):
    """The exception a ``raise`` rule throws by default — deliberately
    *not* one of the solver's own exception types, so containment of
    unexpected client errors is what gets tested."""


def _error_class(name: str):
    if name == "injected":
        return InjectedFault
    if name == "explosion":
        from repro.core.formula import FormulaExplosion

        return FormulaExplosion
    if name == "connection":
        # An OSError subclass: what a flaky transport raises, so the
        # serve client's retry-on-OSError path is what gets exercised.
        return ConnectionError
    raise ValueError(f"unknown fault error kind {name!r}")


@dataclass(frozen=True)
class FaultRule:
    """One deterministic trigger: fire ``action`` at ``site`` on hits
    ``at .. at + times - 1`` (1-based; ``times=None`` fires forever)."""

    site: str
    action: str  # "raise" | "delay" | "kill" | "corrupt"
    at: int = 1
    times: Optional[int] = 1
    error: str = "injected"  # for "raise": "injected" | "explosion"
    delay: float = 0.0  # for "delay": seconds to sleep
    attempt: Optional[int] = None  # fire only on this unit attempt

    _ACTIONS = ("raise", "delay", "kill", "corrupt")

    def __post_init__(self):
        if self.action not in self._ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.at < 1:
            raise ValueError("'at' is a 1-based hit index")
        _error_class(self.error)  # validate eagerly

    @classmethod
    def from_spec(cls, spec: str) -> "FaultRule":
        """Parse ``site:action[:key=value,...]``.

        Examples: ``backward:raise:error=explosion,times=2``,
        ``forward_run:delay:delay=0.05,at=3``, ``unit:kill:attempt=0``.
        """
        parts = spec.split(":", 2)
        if len(parts) < 2:
            raise ValueError(
                f"bad fault spec {spec!r} (want site:action[:key=value,...])"
            )
        site, action = parts[0], parts[1]
        kwargs: Dict[str, object] = {}
        if len(parts) == 3 and parts[2]:
            for item in parts[2].split(","):
                key, _, value = item.partition("=")
                key = key.strip()
                value = value.strip()
                if key in ("at", "attempt"):
                    kwargs[key] = int(value)
                elif key == "times":
                    kwargs[key] = None if value.lower() == "none" else int(value)
                elif key == "delay":
                    kwargs[key] = float(value)
                elif key == "error":
                    kwargs[key] = value
                else:
                    raise ValueError(f"unknown fault spec key {key!r}")
        return cls(site=site, action=action, **kwargs)


class FaultPlan:
    """An ordered rule set with per-process hit counters.

    Plans are immutable-by-convention and pickle *without* their
    counters, so the plan a parent ships to pool workers starts
    counting afresh in every process — which is what makes per-process
    hit semantics well-defined under fan-out."""

    def __init__(self, rules: Sequence[FaultRule] = (), seed: int = 0):
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self.seed = seed
        self._hits: Dict[int, int] = {}

    @classmethod
    def from_specs(cls, specs: Sequence[str], seed: int = 0) -> "FaultPlan":
        return cls([FaultRule.from_spec(spec) for spec in specs], seed=seed)

    def __reduce__(self):
        return (FaultPlan, (self.rules, self.seed))

    def reset(self) -> None:
        """Forget all hit counters (a fresh replay)."""
        self._hits.clear()

    def inject(self, site: str, attempt: Optional[int] = None) -> Optional[str]:
        """Evaluate every rule against one arrival at ``site``.

        Raising and killing rules take effect immediately; a matched
        ``corrupt`` rule is reported through the return value
        (``"corrupt"``) for the call site to act on."""
        fired: Optional[str] = None
        for index, rule in enumerate(self.rules):
            if rule.site != site:
                continue
            if rule.attempt is not None and attempt != rule.attempt:
                continue
            hit = self._hits.get(index, 0) + 1
            self._hits[index] = hit
            if hit < rule.at:
                continue
            if rule.times is not None and hit >= rule.at + rule.times:
                continue
            obs.event(
                "fault_injected",
                site=site,
                action=rule.action,
                hit=hit,
                rule=index,
            )
            if rule.action == "delay":
                time.sleep(rule.delay)
            elif rule.action == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            elif rule.action == "raise":
                raise _error_class(rule.error)(
                    f"injected fault at {site} (hit {hit}, rule {index})"
                )
            else:  # corrupt
                fired = "corrupt"
        return fired

    def __len__(self) -> int:
        return len(self.rules)


class _Scope:
    __slots__ = ("plan", "attempt")

    def __init__(self, plan: FaultPlan, attempt: Optional[int]):
        self.plan = plan
        self.attempt = attempt


#: The ambient fault scope, or ``None`` (no injection — the default).
_CURRENT: Optional[_Scope] = None


def current_plan() -> Optional[FaultPlan]:
    """The installed plan, or ``None``."""
    scope = _CURRENT
    return scope.plan if scope is not None else None


def inject(site: str) -> Optional[str]:
    """Report one arrival at ``site`` to the ambient plan (no-op —
    one global read — when no plan is installed)."""
    scope = _CURRENT
    if scope is None:
        return None
    return scope.plan.inject(site, attempt=scope.attempt)


class fault_scope:
    """Install a plan (with an optional unit-attempt number) for a
    ``with`` block; scopes nest like :class:`~repro.robust.budget.budget_scope`."""

    def __init__(self, plan: Optional[FaultPlan], attempt: Optional[int] = None):
        self._scope = None if plan is None else _Scope(plan, attempt)
        self._previous: Optional[_Scope] = None

    def __enter__(self) -> Optional[FaultPlan]:
        global _CURRENT
        self._previous = _CURRENT
        _CURRENT = self._scope
        return self._scope.plan if self._scope is not None else None

    def __exit__(self, *exc) -> bool:
        global _CURRENT
        _CURRENT = self._previous
        return False
