"""JSONL checkpoints of completed evaluation units.

A long parallel evaluation that dies at unit 47 of 50 should not have
to redo the first 46.  The bench harness appends one self-contained
JSONL line per *completed* unit — its query records, its metrics
snapshot, and any verdict certificates it emitted — flushed and
fsync'd immediately, so the file is valid after a crash at any point.
``repro eval --resume`` then merges the checkpointed units and runs
only the missing ones; the merge is deterministic because units are
keyed by ``(benchmark, analysis, index)`` and merged in unit order, so
a resumed evaluation is record-for-record identical to an uninterrupted
one (worker trace events are the one thing not checkpointed — a
resumed unit replays no spans).

Crash semantics, shared with the search journal
(:mod:`repro.robust.journal`) through :func:`scan_jsonl` and
:class:`JsonlAppender`:

* a *trailing* truncated line — the one a SIGKILL mid-write leaves —
  is skipped on load and truncated away before the next append, so a
  recovered file never grows a record concatenated onto a torn tail;
* a corrupt *interior* line raises: that is data loss, not a crash
  tail, and silently dropping completed units would be worse than
  failing loudly.

Granularity: this file checkpoints *whole units*, and stays at that
granularity so existing checkpoints and tooling keep working.  The
lease scheduler (:mod:`repro.robust.scheduler`) layers a second,
finer-grained durability record next to it — the lease log at
``checkpoint_path + ".leases"`` records each durably-completed *query
group*, so ``--resume`` after a crash mid-unit re-solves only the
groups that never completed, then re-checkpoints the finished unit
here (see :func:`repro.bench.parallel._run_leased`).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.stats import CacheCounters, QueryRecord

__all__ = [
    "CheckpointWriter",
    "JsonlAppender",
    "UnitKey",
    "load_checkpoint",
    "scan_jsonl",
    "unit_from_dict",
    "unit_to_dict",
]

CHECKPOINT_VERSION = 1

UnitKey = Tuple[str, str, int]  # (benchmark, analysis, unit index)

#: What a checkpoint stores per unit: records + metrics snapshot +
#: how many attempts the unit took + the unit's verdict certificates
#: (trace events are not persisted).
UnitPayload = Tuple[
    List[QueryRecord], Dict[str, CacheCounters], int, List[dict]
]


def scan_jsonl(path: str) -> Tuple[List[dict], int]:
    """Parse a JSONL file of dict records written by an fsync-per-line
    appender; returns ``(records, intact_length)`` where
    ``intact_length`` is the byte offset just past the last intact line.

    A torn final line (missing its newline, or not valid JSON — what a
    SIGKILL mid-write leaves behind) is skipped.  A corrupt line
    *before* the end raises ``ValueError``: interior corruption is data
    loss, not a crash tail, and must not be silently dropped.  A
    missing file is simply empty."""
    records: List[dict] = []
    intact = 0
    if not os.path.exists(path):
        return records, intact
    with open(path, "rb") as handle:
        data = handle.read()
    lines = data.splitlines(keepends=True)
    offset = 0
    for index, line in enumerate(lines):
        is_last = index == len(lines) - 1
        if not line.endswith(b"\n"):
            # Writers newline-terminate every record; a line without
            # one is a torn tail (only the last line can lack it).
            break
        offset += len(line)
        text = line.decode("utf-8", errors="replace").strip()
        if not text:
            intact = offset
            continue
        record: Optional[dict] = None
        try:
            parsed = json.loads(text)
            if isinstance(parsed, dict):
                record = parsed
        except ValueError:
            record = None
        if record is None:
            if is_last:
                break  # torn tail from a crash mid-write
            raise ValueError(
                f"{path}: corrupt JSONL record on line {index + 1} "
                "(not a trailing crash artifact)"
            )
        records.append(record)
        intact = offset
    return records, intact


class JsonlAppender:
    """Crash-safe append-only JSONL writer.

    On open, the file is truncated back to its last intact line (see
    :func:`scan_jsonl`), so appending after a SIGKILL never produces a
    record concatenated onto a torn tail.  Every record is written,
    flushed, and fsync'd before :meth:`append` returns — a kill at any
    instant loses at most the record being written."""

    def __init__(self, path: str):
        self.path = path
        if os.path.exists(path):
            _records, intact = scan_jsonl(path)
            handle = open(path, "r+")
            handle.truncate(intact)
            handle.seek(intact)
            self.fresh = intact == 0
        else:
            handle = open(path, "w")
            self.fresh = True
        self._handle = handle

    def append(self, record: dict) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "JsonlAppender":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def unit_to_dict(key: UnitKey, payload: UnitPayload) -> dict:
    from repro.bench.export import record_to_dict

    records, metrics, attempts, certificates = payload
    return {
        "type": "unit",
        "benchmark": key[0],
        "analysis": key[1],
        "index": key[2],
        "attempts": attempts,
        "records": [record_to_dict(record) for record in records],
        "metrics": {
            name: {"hits": counters.hits, "misses": counters.misses}
            for name, counters in sorted(metrics.items())
        },
        "certificates": list(certificates),
    }


def unit_from_dict(data: dict) -> Tuple[UnitKey, UnitPayload]:
    from repro.bench.export import record_from_dict

    key = (data["benchmark"], data["analysis"], int(data["index"]))
    records = [record_from_dict(item) for item in data["records"]]
    metrics = {
        name: CacheCounters(hits=int(entry["hits"]), misses=int(entry["misses"]))
        for name, entry in data.get("metrics", {}).items()
    }
    certificates = list(data.get("certificates", []))
    return key, (records, metrics, int(data.get("attempts", 1)), certificates)


class CheckpointWriter:
    """Append-only JSONL writer; one flushed line per completed unit."""

    def __init__(self, path: str):
        self.path = path
        self._appender = JsonlAppender(path)
        if self._appender.fresh:
            self._appender.append(
                {"type": "checkpoint_header", "version": CHECKPOINT_VERSION}
            )

    def write_unit(self, key: UnitKey, payload: UnitPayload) -> None:
        self._appender.append(unit_to_dict(key, payload))

    def close(self) -> None:
        self._appender.close()

    def __enter__(self) -> "CheckpointWriter":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def load_checkpoint(path: str) -> Dict[UnitKey, UnitPayload]:
    """Read every intact unit line of a checkpoint (missing file =
    empty).

    A trailing truncated line — the crash the checkpoint exists for may
    have happened mid-write — is skipped; everything before it is still
    recovered.  Corruption *inside* the file (a damaged interior line,
    a malformed unit record, an unknown version) raises instead: that
    is not a crash artifact, and pretending the affected units never
    ran would silently redo — or worse, half-merge — finished work."""
    completed: Dict[UnitKey, UnitPayload] = {}
    records, _intact = scan_jsonl(path)
    for data in records:
        rtype = data.get("type")
        if rtype == "checkpoint_header":
            version = data.get("version")
            if version != CHECKPOINT_VERSION:
                raise ValueError(
                    f"{path}: unsupported checkpoint version {version!r}"
                )
            continue
        if rtype != "unit":
            continue  # unknown record types are forward-compatible
        try:
            key, payload = unit_from_dict(data)
        except (KeyError, TypeError, ValueError) as error:
            raise ValueError(f"{path}: malformed unit record: {error}")
        completed[key] = payload
    return completed
