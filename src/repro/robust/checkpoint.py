"""JSONL checkpoints of completed evaluation units.

A long parallel evaluation that dies at unit 47 of 50 should not have
to redo the first 46.  The bench harness appends one self-contained
JSONL line per *completed* unit — its query records and its metrics
snapshot — flushed immediately, so the file is valid after a crash at
any point (a torn final line is detected and ignored by the loader).
``repro eval --resume`` then merges the checkpointed units and runs
only the missing ones; the merge is deterministic because units are
keyed by ``(benchmark, analysis, index)`` and merged in unit order, so
a resumed evaluation is record-for-record identical to an uninterrupted
one (worker trace events are the one thing not checkpointed — a
resumed unit replays no spans).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from repro.core.stats import CacheCounters, QueryRecord

__all__ = [
    "CheckpointWriter",
    "UnitKey",
    "load_checkpoint",
    "unit_from_dict",
    "unit_to_dict",
]

CHECKPOINT_VERSION = 1

UnitKey = Tuple[str, str, int]  # (benchmark, analysis, unit index)

#: What a checkpoint stores per unit: records + metrics snapshot +
#: how many attempts the unit took (trace events are not persisted).
UnitPayload = Tuple[List[QueryRecord], Dict[str, CacheCounters], int]


def unit_to_dict(key: UnitKey, payload: UnitPayload) -> dict:
    from repro.bench.export import record_to_dict

    records, metrics, attempts = payload
    return {
        "type": "unit",
        "benchmark": key[0],
        "analysis": key[1],
        "index": key[2],
        "attempts": attempts,
        "records": [record_to_dict(record) for record in records],
        "metrics": {
            name: {"hits": counters.hits, "misses": counters.misses}
            for name, counters in sorted(metrics.items())
        },
    }


def unit_from_dict(data: dict) -> Tuple[UnitKey, UnitPayload]:
    from repro.bench.export import record_from_dict

    key = (data["benchmark"], data["analysis"], int(data["index"]))
    records = [record_from_dict(item) for item in data["records"]]
    metrics = {
        name: CacheCounters(hits=int(entry["hits"]), misses=int(entry["misses"]))
        for name, entry in data.get("metrics", {}).items()
    }
    return key, (records, metrics, int(data.get("attempts", 1)))


class CheckpointWriter:
    """Append-only JSONL writer; one flushed line per completed unit."""

    def __init__(self, path: str):
        self.path = path
        fresh = not os.path.exists(path) or os.path.getsize(path) == 0
        self._handle = open(path, "a")
        if fresh:
            self._emit(
                {"type": "checkpoint_header", "version": CHECKPOINT_VERSION}
            )

    def _emit(self, record: dict) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def write_unit(self, key: UnitKey, payload: UnitPayload) -> None:
        self._emit(unit_to_dict(key, payload))

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "CheckpointWriter":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def load_checkpoint(path: str) -> Dict[UnitKey, UnitPayload]:
    """Read every intact unit line of a checkpoint (missing file = empty).

    Robust by construction: a torn or corrupt line — the crash the
    checkpoint exists for may have happened mid-write — ends the scan
    instead of raising, so everything before it is still recovered."""
    completed: Dict[UnitKey, UnitPayload] = {}
    if not os.path.exists(path):
        return completed
    with open(path) as handle:
        for line_number, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except ValueError:
                break  # torn tail from a crash mid-write
            if not isinstance(data, dict):
                break
            rtype = data.get("type")
            if rtype == "checkpoint_header":
                version = data.get("version")
                if version != CHECKPOINT_VERSION:
                    raise ValueError(
                        f"{path}: unsupported checkpoint version {version!r}"
                    )
                continue
            if rtype != "unit":
                break
            try:
                key, payload = unit_from_dict(data)
            except (KeyError, TypeError, ValueError):
                break
            completed[key] = payload
    return completed
