"""Machine-checkable verdict certificates for the TRACER search.

A ``PROVEN`` or ``IMPOSSIBLE`` answer from the driver is a claim; a
*certificate* makes it independently checkable, in the tradition of
certifying model checkers (witness validation in CEGAR à la Beyer &
Löwe; refinement validation à la Greitschus et al.).  The paper's own
theorems say exactly what there is to check:

``PROVEN p``
    the forward fixpoint annotation under ``bind(p)`` proves the query
    (re-run the fixpoint — it is inductive by construction of the
    worklist engines — and scan the query point; a digest ties the
    recorded annotation to the re-run), and ``p`` is minimum-cost
    among the models of the accumulated failure clauses (a fresh
    :class:`~repro.core.minsat.MinCostSat` call — Algorithm 1 line 8
    redone from the certificate alone);

``IMPOSSIBLE``
    every learned clause is justified by a recorded counterexample
    trace — replayed through
    :func:`repro.core.selfcheck.check_soundness_on_trace` (Theorem 3:
    the trace really is a counterexample and its failure condition
    covers the abstraction it eliminated) and re-derived through a
    fresh :class:`~repro.core.viability.ViabilityStore` — and the
    conjunction of the clauses is UNSAT;

``EXHAUSTED``
    a provenance record of the budget/degradation events that caused
    the give-up (structural check only — exhaustion is a report, not a
    theorem).

Certificates are plain JSON dicts (one per query, JSONL on disk) so
they survive worker pools, checkpoints, and ``repro certify``.  The
``client`` field is a *rebuild stamp* the emitting layer (CLI solver
or bench harness) adds after the solve; the checker uses it to
reconstruct the client analysis from scratch — the check shares no
state with the run that produced the certificate.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.core.formula import evaluate
from repro.core.meta import backward_trace
from repro.core.minsat import MinCostSat
from repro.core.selfcheck import check_soundness_on_trace
from repro.core.stats import QueryStatus
from repro.core.viability import ViabilityStore
from repro.obs import trace as obs
from repro.robust.journal import (
    clause_from_jsonable,
    clause_to_jsonable,
    trace_from_jsonable,
)

__all__ = [
    "CertificateStore",
    "CheckReport",
    "QueryEvidence",
    "annotation_digest",
    "build_certificate",
    "check_certificate",
    "load_certificates",
    "write_certificates",
]

CERTIFICATE_VERSION = 1


@dataclass
class QueryEvidence:
    """Per-query evidence the driver accumulates while searching.

    ``witnesses`` holds one entry per learned clause set — the
    counterexample trace, the abstraction it refuted, the beam width
    used, and the clauses derived; ``provenance`` holds the budget /
    degradation / error events that explain an ``EXHAUSTED`` verdict."""

    witnesses: List[dict] = field(default_factory=list)
    provenance: List[dict] = field(default_factory=list)


class CertificateStore:
    """Collects the certificates emitted by one driver run, in
    resolution order."""

    def __init__(self) -> None:
        self.certificates: List[dict] = []

    def add(self, certificate: dict) -> None:
        self.certificates.append(certificate)

    def by_query(self) -> Dict[str, dict]:
        return {cert["query"]: cert for cert in self.certificates}

    def stamp(self, client_info: dict) -> None:
        """Attach one rebuild stamp to every collected certificate."""
        for cert in self.certificates:
            cert["client"] = dict(client_info)


def build_certificate(
    client,
    query,
    status: QueryStatus,
    p: Optional[frozenset],
    clauses,
    evidence: QueryEvidence,
    iterations: int,
    config,
    digest: Optional[str],
) -> dict:
    """One verdict certificate as a JSON-able dict (see module doc)."""
    cert = {
        "type": "certificate",
        "version": CERTIFICATE_VERSION,
        "verdict": status.value,
        "query": str(query),
        "iterations": iterations,
        "abstraction": sorted(p) if p is not None else None,
        "abstraction_cost": (
            client.analysis.param_space.cost(p) if p is not None else None
        ),
        "clauses": sorted(clause_to_jsonable(c) for c in set(clauses)),
        "annotation_digest": digest,
        "k": config.k,
        "max_cubes": config.max_cubes,
        "witnesses": [
            {
                "abstraction": w["abstraction"],
                "k": w.get("k"),
                "trace": w["trace"],
                "clauses": w["clauses"],
            }
            for w in evidence.witnesses
        ],
        "provenance": list(evidence.provenance),
    }
    return cert


def annotation_digest(result, label: str) -> str:
    """SHA-256 over the sorted canonical state strings reaching the
    ``Observe(label)`` query point — the part of the forward fixpoint
    annotation the verdict rests on.  Every bundled client's state
    ``str()`` is deterministic (sorted / schema-ordered), so the digest
    is stable across processes and platforms."""
    digest = hashlib.sha256()
    for line in sorted(
        str(state) for _node, state in result.states_before_observe(label)
    ):
        digest.update(line.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


# -- persistence --------------------------------------------------------------


def write_certificates(certificates: Iterable[dict], path: str) -> None:
    """Write certificates as JSONL (header line first)."""
    with open(path, "w") as handle:
        handle.write(
            json.dumps(
                {
                    "type": "certificate_header",
                    "version": CERTIFICATE_VERSION,
                }
            )
            + "\n"
        )
        for cert in certificates:
            handle.write(json.dumps(cert, sort_keys=True) + "\n")


def load_certificates(path: str) -> List[dict]:
    """Load a certificate file strictly: unlike checkpoints and
    journals, a certificate file is evidence — any damage rejects it."""
    if not os.path.exists(path):
        raise ValueError(f"{path}: no such certificate file")
    certificates: List[dict] = []
    with open(path) as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                raise ValueError(f"{path}: line {number} is not valid JSON")
            if not isinstance(record, dict):
                raise ValueError(f"{path}: line {number} is not a record")
            rtype = record.get("type")
            if rtype == "certificate_header":
                version = record.get("version")
                if version != CERTIFICATE_VERSION:
                    raise ValueError(
                        f"{path}: unsupported certificate version {version!r}"
                    )
            elif rtype == "certificate":
                certificates.append(record)
            else:
                raise ValueError(
                    f"{path}: line {number} has unknown type {rtype!r}"
                )
    return certificates


# -- the independent checker --------------------------------------------------


@dataclass
class CheckReport:
    """Outcome of checking one certificate."""

    query: str
    verdict: str
    problems: List[str]

    @property
    def ok(self) -> bool:
        return not self.problems


def _satisfies(p: frozenset, clause: frozenset) -> bool:
    return any((var in p) == sign for var, sign in clause)


def check_certificate(client, query, cert: dict) -> CheckReport:
    """Re-validate one certificate against a freshly built client.

    The check uses nothing from the emitting run but the certificate
    itself: forward fixpoints are re-run, minimality is re-decided by a
    fresh MinCostSAT call, counterexample traces are replayed through
    the selfcheck machinery, and clauses are re-derived and compared."""
    problems: List[str] = []
    verdict = str(cert.get("verdict"))
    if cert.get("version") != CERTIFICATE_VERSION:
        problems.append(f"unsupported certificate version {cert.get('version')!r}")
    if cert.get("query") != str(query):
        problems.append(
            f"certificate names query {cert.get('query')!r}, "
            f"checker was given {str(query)!r}"
        )
    if not problems:
        try:
            clauses = [clause_from_jsonable(c) for c in cert.get("clauses", [])]
        except (TypeError, ValueError) as error:
            clauses = None
            problems.append(f"malformed clause set: {error}")
        if clauses is not None:
            if verdict == QueryStatus.PROVEN.value:
                _check_proven(client, query, cert, clauses, problems)
            elif verdict == QueryStatus.IMPOSSIBLE.value:
                _check_impossible(client, query, cert, clauses, problems)
            elif verdict == QueryStatus.EXHAUSTED.value:
                _check_exhausted(cert, problems)
            else:
                problems.append(f"unknown verdict {verdict!r}")
    if obs.active():
        obs.event(
            "certificate_checked",
            query=cert.get("query"),
            verdict=verdict,
            ok=not problems,
            problems=len(problems),
        )
    return CheckReport(
        query=str(cert.get("query")), verdict=verdict, problems=problems
    )


def _check_proven(client, query, cert, clauses, problems: List[str]) -> None:
    abstraction = cert.get("abstraction")
    if abstraction is None:
        problems.append("proven certificate carries no abstraction")
        return
    p = frozenset(abstraction)
    space = client.analysis.param_space
    cost = space.cost(p)
    if cert.get("abstraction_cost") != cost:
        problems.append(
            f"recorded cost {cert.get('abstraction_cost')} != "
            f"recomputed cost {cost}"
        )
    # (a) p is a model of the accumulated clauses ...
    for clause in clauses:
        if not _satisfies(p, clause):
            problems.append(
                "chosen abstraction violates learned clause "
                f"{clause_to_jsonable(clause)}"
            )
            return
    # (b) ... and a *minimum-cost* one: Algorithm 1 line 8 redone by an
    # independent MinCostSAT call.  p being a model bounds the optimum
    # from above, so a strictly cheaper model means p was not minimal.
    solver = MinCostSat()
    for clause in clauses:
        solver.add_clause(clause)
    model = solver.solve()
    if model is None:
        problems.append("clause set is unsatisfiable yet the verdict is proven")
    elif space.cost(frozenset(model)) < cost:
        problems.append(
            f"abstraction of cost {cost} is not minimum: model "
            f"{sorted(model)} costs {space.cost(frozenset(model))}"
        )
    # (c) the forward fixpoint under bind(p) proves the query.  The
    # worklist engines compute the least fixpoint, which is inductive
    # by construction; re-running and re-scanning the query point (and
    # matching the digest) re-establishes the verdict from scratch.
    result = client.run_forward(p)
    fail = client.fail_condition(query)
    theory = client.meta.theory
    for _node, state in result.states_before_observe(query.label):
        if evaluate(fail, theory, p, state):
            problems.append(
                "forward annotation under the certified abstraction does "
                f"not prove the query (failing state {state!r})"
            )
            break
    recorded = cert.get("annotation_digest")
    if recorded is not None:
        recomputed = annotation_digest(result, query.label)
        if recorded != recomputed:
            problems.append(
                "annotation digest mismatch: recorded "
                f"{recorded[:12]}…, recomputed {recomputed[:12]}…"
            )


def _check_impossible(client, query, cert, clauses, problems: List[str]) -> None:
    # (a) the clause conjunction is UNSAT — no abstraction is viable.
    solver = MinCostSat()
    for clause in clauses:
        solver.add_clause(clause)
    if solver.is_satisfiable():
        problems.append(
            "clause conjunction is satisfiable — some abstraction was "
            "never refuted"
        )
    # (b) every clause is justified by some recorded counterexample.
    witnessed = set()
    witnesses = cert.get("witnesses", [])
    for witness in witnesses:
        for item in witness.get("clauses", []):
            witnessed.add(clause_from_jsonable(item))
    for clause in set(clauses):
        if clause not in witnessed:
            problems.append(
                "clause not justified by any recorded counterexample: "
                f"{clause_to_jsonable(clause)}"
            )
    # (c) each witness replays: the trace is a genuine counterexample
    # for the abstraction it refuted (Theorem 3, via the selfcheck
    # machinery) and re-deriving its failure condition yields exactly
    # the recorded clauses.
    analysis = client.analysis
    meta = client.meta
    d_init = analysis.initial_state()
    fail = client.fail_condition(query)
    max_cubes = cert.get("max_cubes")
    for index, witness in enumerate(witnesses):
        try:
            trace = trace_from_jsonable(witness.get("trace", []))
            refuted = frozenset(witness.get("abstraction", []))
            recorded = {
                clause_from_jsonable(item)
                for item in witness.get("clauses", [])
            }
        except (TypeError, ValueError) as error:
            problems.append(f"witness {index} is malformed: {error}")
            continue
        k = witness.get("k")
        violations = check_soundness_on_trace(
            analysis,
            meta,
            trace,
            refuted,
            d_init,
            fail,
            other_params=(analysis.param_space.bottom(),),
            k=k,
            max_cubes=max_cubes,
        )
        for violation in violations:
            problems.append(f"witness {index}: {violation}")
        if violations:
            continue
        result = backward_trace(
            meta, analysis, trace, refuted, d_init, fail,
            k=k, max_cubes=max_cubes,
        )
        probe = ViabilityStore(meta.theory, d_init)
        derived = set(probe.add_failure_condition(result.condition))
        if derived != recorded:
            problems.append(
                f"witness {index}: replay derives clauses "
                f"{sorted(map(clause_to_jsonable, derived))}, certificate "
                f"records {sorted(map(clause_to_jsonable, recorded))}"
            )


def _check_exhausted(cert, problems: List[str]) -> None:
    provenance = cert.get("provenance")
    if not isinstance(provenance, list) or not provenance:
        problems.append(
            "exhausted certificate carries no provenance events"
        )
        return
    for index, entry in enumerate(provenance):
        if not isinstance(entry, dict) or "kind" not in entry:
            problems.append(f"provenance entry {index} has no kind")
