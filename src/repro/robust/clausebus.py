"""The clause bus: cross-worker sharing of learned refinement rounds.

The paper's group-solving insight — an unviability clause learned
while refining one query prunes the search for its siblings — stops at
a process boundary in the wave pool: worker A's clauses never reach
worker B mid-run, and when A is SIGKILLed its partial search is
forfeit.  The bus closes both gaps with one append-only JSONL file per
evaluation (scoped per task by the program/unit digest in the scope
string) carrying the *completed CEGAR rounds* of every worker::

    {"type": "bus_header", "version": 1}
    {"type": "round", "scope": "bench:analysis:unit:group",
     "round": n, "queries": [...], "worker": w,
     "record": <search-journal round record>, "sha256": ...}

A worker publishes each successful round as it finishes (between CEGAR
rounds, right where the search journal records it); a sibling that
later re-executes the *same task* — after stealing an expired lease —
drains matching rounds instead of re-running their forward fixpoints.
Crucially, a drained round is **never trusted**: it is replayed
through :func:`repro.core.tracer.apply_replay`, whose per-survivor
``ViabilityStore.add_clauses`` + ``excludes`` probes re-validate every
imported clause against this process's own store before any of it can
prune the search.  A record that fails re-validation raises
:class:`ClauseFeedMismatch` and the importer falls back to solving the
round cold.

Only ``"ok"`` rounds travel: budget and error outcomes are
wall-clock-dependent (re-running them may legitimately differ), and
``"impossible"`` rounds are a single cheap MinCostSAT call — not worth
the coupling.

Durability discipline matches :mod:`repro.robust.leases`: torn-tail
tolerant incremental scans, truncate-then-append + fsync under an
exclusive flock on a sidecar lock file, and a per-record sha256.
Publishing is strictly best-effort — any IO error disables the feed
for the rest of the task rather than failing the evaluation.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.robust.leases import (
    LeaseCorruption,
    _LeaseLock,
    _scan_from,
    record_checksum,
)

__all__ = [
    "BUS_VERSION",
    "ClauseBus",
    "ClauseFeed",
    "ClauseFeedMismatch",
    "load_bus_records",
]

BUS_VERSION = 1


class ClauseFeedMismatch(ValueError):
    """A drained round failed re-validation against this process's own
    viability store — the import is discarded, never trusted."""


def load_bus_records(path: str) -> List[dict]:
    """Every intact record of a clause-bus log, checksums verified."""
    records, _intact = _scan_from(path, 0)
    for index, record in enumerate(records):
        stored = record.get("sha256")
        if stored is not None and stored != record_checksum(record):
            raise LeaseCorruption(f"{path}: record {index} fails its checksum")
    return records


class ClauseBus:
    """One process's handle on the shared round log.

    Reads are lock-free incremental scans (torn tails tolerated);
    writes sync + truncate-torn-tail + append + fsync under the flock,
    exactly like :class:`repro.robust.leases.LeaseLog`.
    """

    def __init__(self, path: str, worker: str, fresh: bool = False):
        self.path = path
        self.worker = worker
        self._mutex = threading.Lock()
        self._offset = 0
        self._rounds: Dict[Tuple[str, int, Tuple[str, ...]], dict] = {}
        self.published = 0
        self.dropped = 0
        self.disabled = False
        try:
            with self._mutex, _LeaseLock(path):
                if fresh and os.path.exists(path):
                    with open(path, "w"):
                        pass
                self._sync_locked()
                if self._offset == 0:
                    self._append_locked(
                        {"type": "bus_header", "version": BUS_VERSION}
                    )
        except OSError:
            self.disabled = True

    # -- shared-file plumbing ----------------------------------------------

    def _ingest(self, record: dict) -> None:
        stored = record.get("sha256")
        if stored is not None and stored != record_checksum(record):
            raise LeaseCorruption(
                f"{self.path}: clause-bus record fails its checksum"
            )
        if record.get("type") != "round":
            return
        key = (
            record["scope"],
            int(record["round"]),
            tuple(record["queries"]),
        )
        # First publication wins; rounds are deterministic per scope so
        # later duplicates are identical anyway.
        self._rounds.setdefault(key, record)

    def _sync_locked(self) -> None:
        records, self._offset = _scan_from(self.path, self._offset)
        for record in records:
            self._ingest(record)

    def _append_locked(self, record: dict) -> None:
        record = dict(record)
        record["sha256"] = record_checksum(record)
        line = json.dumps(record, sort_keys=True) + "\n"
        size = os.path.getsize(self.path) if os.path.exists(self.path) else 0
        if size > self._offset:
            with open(self.path, "r+b") as handle:
                handle.truncate(self._offset)
        with open(self.path, "a") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
        self._offset += len(line.encode("utf-8"))
        self._ingest(record)

    # -- the bus protocol ---------------------------------------------------

    def publish(
        self, scope: str, round_index: int, queries: Sequence[str], record: dict
    ) -> bool:
        """Durably publish one completed round (best-effort: IO errors
        disable the bus and count as drops, never raise)."""
        if self.disabled:
            self.dropped += 1
            return False
        try:
            with self._mutex, _LeaseLock(self.path):
                self._sync_locked()
                key = (scope, int(round_index), tuple(queries))
                if key in self._rounds:
                    return False
                self._append_locked(
                    {
                        "type": "round",
                        "scope": scope,
                        "round": int(round_index),
                        "queries": list(queries),
                        "worker": self.worker,
                        "record": record,
                        "t": time.time(),
                    }
                )
                self.published += 1
                return True
        except OSError:
            self.disabled = True
            self.dropped += 1
            return False

    def fetch(
        self, scope: str, round_index: int, queries: Sequence[str]
    ) -> Optional[dict]:
        """The published round record for ``(scope, round, queries)``,
        or ``None``.  Lock-free read; IO errors disable the bus."""
        if self.disabled:
            return None
        key = (scope, int(round_index), tuple(queries))
        found = self._rounds.get(key)
        if found is not None:
            return found["record"]
        try:
            with self._mutex:
                self._sync_locked()
        except OSError:
            self.disabled = True
            return None
        found = self._rounds.get(key)
        return None if found is None else found["record"]

    def rounds_for(self, scope: str) -> List[dict]:
        """All published round records for a scope, in round order."""
        try:
            with self._mutex:
                self._sync_locked()
        except OSError:
            self.disabled = True
        matching = [
            record
            for (record_scope, _idx, _qs), record in self._rounds.items()
            if record_scope == scope
        ]
        return sorted(matching, key=lambda record: int(record["round"]))


class ClauseFeed:
    """A single task's view of the bus, handed to the tracer.

    The tracer calls :meth:`drain` before solving each round — a hit
    means a sibling already finished that exact round for this scope
    and the record can be replayed through the re-validation path —
    and :meth:`publish` after recording each successful round.
    """

    def __init__(self, bus: ClauseBus, scope: str):
        self.bus = bus
        self.scope = scope
        self.imported = 0
        self.published = 0

    def drain(
        self, round_index: int, queries: Sequence[str]
    ) -> Optional[dict]:
        record = self.bus.fetch(self.scope, round_index, queries)
        if record is not None:
            self.imported += 1
        return record

    def publish(self, record: dict) -> None:
        if record.get("outcome") != "ok":
            return  # budget/error rounds are timing-dependent; skip
        if self.bus.publish(
            self.scope, int(record["round"]), record["queries"], record
        ):
            self.published += 1

    def counters(self) -> dict:
        return {"imported": self.imported, "published": self.published}
