"""A process pool that survives its workers.

``ProcessPoolExecutor.map`` dies with the first ``BrokenProcessPool``
(one SIGKILLed/OOM-killed worker aborts the whole evaluation) and has
no notion of per-unit timeouts or retries.  :func:`run_units` wraps it
in *waves*:

1. submit every pending unit to a fresh pool;
2. wait for results, bounded by an optional timeout (scaled by queue
   depth, since queued units cannot start before a slot frees up);
3. a unit whose future raised is charged one failed attempt — a
   ``BrokenProcessPool`` charges every unit that was still in flight,
   since the parent cannot tell which one took the worker down;
4. units still under ``max_attempts`` go into the next wave after an
   exponential backoff; the pool is respawned (and any lingering
   workers terminated) whenever it broke or timed out;
5. units that exhaust their attempts become failed
   :class:`UnitOutcome` values — the caller degrades, it never crashes.

Work functions must be picklable module-level callables of signature
``fn(item, attempt)``; the attempt index is what deterministic fault
rules pin to (see :mod:`repro.robust.faults`).  Results arrive keyed
by item index, so callers merge them in submission order regardless of
completion order — determinism is preserved across crashes and
retries.

The executor itself is a module-level **shared pool**: the first wave
spawns it and every later wave — and every later :func:`run_units`
call in the process — reuses it, so worker startup is paid once per
process instead of once per evaluation.  The pool is discarded and
respawned only when it must be (a broken pool or a timed-out wave
whose workers had to be killed), or when a wave needs more workers
than the live pool has.  :func:`pool_stats` exposes the
created/reused/respawned counters so benchmarks can report how often
the pool survived; :func:`shutdown_shared_pool` tears it down (also
registered via ``atexit``).
"""

from __future__ import annotations

import atexit
import gc
import math
import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

__all__ = [
    "RetryPolicy",
    "SupervisedWorker",
    "UnitOutcome",
    "WorkerCrash",
    "WorkerTimeout",
    "pool_stats",
    "run_units",
    "shutdown_shared_pool",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/timeout knobs of the resilient pool."""

    max_attempts: int = 3
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0
    #: Wall-clock allowance per unit *attempt*; a wave's allowance is
    #: this scaled by its queue depth (``ceil(pending / workers)``).
    unit_timeout: Optional[float] = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")

    def backoff(self, retry_round: int) -> float:
        return self.backoff_seconds * (self.backoff_factor ** retry_round)


@dataclass
class UnitOutcome:
    """What became of one unit across all its attempts."""

    index: int
    result: Optional[object] = None
    attempts: int = 0
    error: Optional[str] = None
    errors: List[str] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return self.error is None

    @property
    def retried(self) -> bool:
        return self.attempts > 1


def _kill_lingering_workers(pool: ProcessPoolExecutor) -> None:
    """Terminate worker processes that survived a cancel — the only
    way to reclaim a worker stuck in a non-cooperative unit."""
    processes = getattr(pool, "_processes", None)
    if not processes:
        return
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:
            pass


# The process-wide shared pool.  ``_SHARED_WORKERS`` records its size so
# acquisition can tell whether the live pool satisfies a wave's needs.
_SHARED: Optional[ProcessPoolExecutor] = None
_SHARED_WORKERS: int = 0
_STATS: Dict[str, int] = {
    "created": 0,
    "reused": 0,
    "respawned": 0,
    "discarded": 0,
}


def pool_stats() -> Dict[str, int]:
    """A snapshot of the shared-pool lifecycle counters.

    ``created`` counts cold starts (no pool existed), ``reused`` waves
    served by an already-live pool, ``respawned`` replacements of a
    live pool (wrong size for the wave), and ``discarded`` teardowns
    forced by broken pools or timed-out waves.
    """
    return dict(_STATS)


def _discard_shared_pool(kill: bool = False) -> None:
    global _SHARED, _SHARED_WORKERS
    pool, _SHARED, _SHARED_WORKERS = _SHARED, None, 0
    if pool is None:
        return
    if kill:
        _STATS["discarded"] += 1
        pool.shutdown(wait=False, cancel_futures=True)
        _kill_lingering_workers(pool)
    pool.shutdown(wait=True, cancel_futures=True)


def shutdown_shared_pool() -> None:
    """Tear down the shared pool (idempotent; also runs at exit)."""
    _discard_shared_pool(kill=False)


atexit.register(shutdown_shared_pool)


def _worker_initializer() -> None:
    """Runs once in every freshly spawned worker.

    Workers are batch processors of short-lived units: refcounting
    reclaims their (overwhelmingly acyclic) analysis garbage the
    moment it drops, so the cycle collector mostly burns time walking
    the large heap the worker inherited from the parent — and, on
    fork platforms, every generation sweep dirties inherited
    copy-on-write pages.  Cyclic garbage merely accrues until the pool
    is respawned, which is bounded by one evaluation's working set.
    """
    gc.disable()


def _acquire_pool(workers: int, max_workers: int) -> ProcessPoolExecutor:
    """Return a pool with at least ``workers`` and at most
    ``max_workers`` workers, reusing the shared one when it fits.

    The upper bound matters: a caller that asked for ``max_workers=1``
    (say, to bound memory) must not inherit a wider pool left over
    from an earlier evaluation.
    """
    global _SHARED, _SHARED_WORKERS
    if _SHARED is not None:
        if workers <= _SHARED_WORKERS <= max_workers:
            _STATS["reused"] += 1
            return _SHARED
        _discard_shared_pool(kill=False)
        _STATS["respawned"] += 1
    else:
        _STATS["created"] += 1
    # Move the parent's long-lived heap into the permanent generation
    # before forking: neither parent nor child generation sweeps will
    # rewrite those objects' GC headers, so the forked pages stay
    # shared instead of being copied on the first collection.
    gc.freeze()
    _SHARED = ProcessPoolExecutor(
        max_workers=workers, initializer=_worker_initializer
    )
    _SHARED_WORKERS = workers
    return _SHARED


class WorkerCrash(RuntimeError):
    """The supervised worker died (SIGKILL, OOM, hard crash) while a
    request was in flight.  Only that request is lost; the supervisor
    respawns the worker for the next one."""


class WorkerTimeout(RuntimeError):
    """A request outlived its allowance.  The worker was mid-compute
    and non-cooperative, so the supervisor killed it — letting it live
    would leave a stale reply in the pipe to answer the *next* request."""


class SupervisedWorker:
    """One supervised child process serving call/response over a pipe.

    Unlike the wave pool above — built for batches of independent
    units — this is the serving daemon's building block: a worker that
    holds *warm state* (a resident :func:`process_session`) across
    requests, where one crash must fail exactly one request.
    ``ProcessPoolExecutor`` cannot do that: killing one of its workers
    breaks the whole pool.  Here each crash or timeout tears down just
    this worker; the next :meth:`call` respawns it after an exponential
    backoff (so a crash-looping workload cannot spin the CPU on forks),
    reported through ``on_respawn(reason, delay, consecutive_failures)``.

    ``target(conn, *args)`` runs in the child with its end of the pipe;
    it should loop ``recv`` → work → ``send`` and exit on ``None`` or
    EOF.  Fork start method: the child inherits the parent's prepared
    state the same way the wave pool's workers do.
    """

    def __init__(
        self,
        target: Callable,
        args: Sequence[object] = (),
        name: str = "worker",
        backoff_seconds: float = 0.05,
        backoff_factor: float = 2.0,
        backoff_cap: float = 2.0,
        on_respawn: Optional[Callable] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.target = target
        self.args = tuple(args)
        self.name = name
        self.backoff_seconds = backoff_seconds
        self.backoff_factor = backoff_factor
        self.backoff_cap = backoff_cap
        self.on_respawn = on_respawn
        self.spawns = 0
        self.respawns = 0
        self.consecutive_failures = 0
        self._sleep = sleep
        self._ctx = multiprocessing.get_context("fork")
        self._process = None
        self._conn = None
        self._last_failure: Optional[str] = None

    @property
    def alive(self) -> bool:
        return self._process is not None and self._process.is_alive()

    @property
    def pid(self) -> Optional[int]:
        return self._process.pid if self._process is not None else None

    def backoff(self) -> float:
        """The delay the *next* respawn will wait (grows exponentially
        with consecutive failures, capped)."""
        if self.consecutive_failures <= 0:
            return 0.0
        return min(
            self.backoff_cap,
            self.backoff_seconds
            * self.backoff_factor ** (self.consecutive_failures - 1),
        )

    def _spawn(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        self._process = self._ctx.Process(
            target=self.target,
            args=(child_conn,) + self.args,
            name=self.name,
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        self._conn = parent_conn
        self.spawns += 1

    def ensure(self) -> None:
        """Spawn the worker if it is not running.  Recovering from a
        failure waits the backoff first and reports the respawn."""
        if self.alive:
            return
        self._teardown()
        if self.spawns == 0:
            self._spawn()
            return
        delay = self.backoff()
        if self.on_respawn is not None:
            self.on_respawn(
                self._last_failure or "crash",
                delay,
                self.consecutive_failures,
            )
        if delay > 0:
            self._sleep(delay)
        self._spawn()
        self.respawns += 1

    def call(self, payload, timeout: Optional[float] = None):
        """Send one payload and wait for the reply.

        Raises :class:`WorkerCrash` if the worker dies first (it will
        be respawned lazily on the next call) and :class:`WorkerTimeout`
        if no reply arrives within ``timeout`` seconds — the worker is
        killed in that case, because a late reply left in the pipe
        would answer the wrong request."""
        self.ensure()
        try:
            self._conn.send(payload)
            if timeout is not None and not self._conn.poll(timeout):
                self._fail("timeout")
                raise WorkerTimeout(
                    f"{self.name}: no reply within {timeout:.3f}s "
                    "(worker killed)"
                )
            reply = self._conn.recv()
        except (EOFError, BrokenPipeError, ConnectionError, OSError) as error:
            self._fail("crash")
            raise WorkerCrash(
                f"{self.name}: worker died mid-request ({error!r})"
            ) from error
        self.consecutive_failures = 0
        return reply

    def _fail(self, reason: str) -> None:
        self.consecutive_failures += 1
        self._last_failure = reason
        self._teardown(kill=True)

    def kill_process(self) -> None:
        """SIGKILL the child outright (chaos hook: the in-flight
        :meth:`call` observes the crash exactly as a real one)."""
        if self._process is not None and self._process.is_alive():
            self._process.kill()

    def _teardown(self, kill: bool = False) -> None:
        process, self._process = self._process, None
        conn, self._conn = self._conn, None
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        if process is not None:
            if kill and process.is_alive():
                process.kill()
            process.join(timeout=5.0)

    def close(self) -> None:
        """Stop the worker politely (sentinel, short grace, then kill)."""
        if self._conn is not None:
            try:
                self._conn.send(None)
            except (BrokenPipeError, ConnectionError, OSError):
                pass
        if self._process is not None:
            self._process.join(timeout=1.0)
            if self._process.is_alive():
                self._process.kill()
        self._teardown()

    def __enter__(self) -> "SupervisedWorker":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def run_units(
    fn: Callable,
    items: Sequence[object],
    policy: RetryPolicy = RetryPolicy(),
    max_workers: int = 2,
    sleep: Callable[[float], None] = time.sleep,
    monotonic: Callable[[], float] = time.monotonic,
) -> List[UnitOutcome]:
    """Run ``fn(item, attempt)`` for every item on a crash-surviving
    pool; returns one :class:`UnitOutcome` per item, in item order."""
    outcomes = [UnitOutcome(index=index) for index in range(len(items))]
    pending: List[int] = list(range(len(items)))
    retry_round = 0
    while pending:
        workers = max(1, min(max_workers, len(pending)))
        wave_timeout = None
        if policy.unit_timeout is not None:
            wave_timeout = policy.unit_timeout * math.ceil(
                len(pending) / workers
            )
        pool = _acquire_pool(workers, max_workers)
        needs_kill = False
        failed_this_wave: List[int] = []
        try:
            futures = {}
            for index in pending:
                outcomes[index].attempts += 1
                try:
                    future = pool.submit(
                        fn, items[index], outcomes[index].attempts - 1
                    )
                except BrokenProcessPool:
                    # A warm pool can break *while we are still
                    # submitting* (a just-submitted unit killed its
                    # worker before the loop finished); submit then
                    # raises synchronously.  Charge the unit a crashed
                    # attempt, same as if its future had failed.
                    needs_kill = True
                    outcomes[index].errors.append(
                        f"worker crashed (attempt {outcomes[index].attempts})"
                    )
                    failed_this_wave.append(index)
                    continue
                futures[future] = index
            deadline = None if wave_timeout is None else monotonic() + wave_timeout
            not_done = set(futures)
            while not_done:
                remaining = None
                if deadline is not None:
                    remaining = max(0.0, deadline - monotonic())
                done, not_done = wait(
                    not_done, timeout=remaining, return_when=FIRST_COMPLETED
                )
                if not done:
                    # Wave deadline: everything still in flight is over
                    # budget; the pool must be killed to reclaim workers.
                    needs_kill = True
                    for future in not_done:
                        index = futures[future]
                        message = (
                            f"timeout after {policy.unit_timeout}s "
                            f"(attempt {outcomes[index].attempts})"
                        )
                        outcomes[index].errors.append(message)
                        failed_this_wave.append(index)
                    not_done = set()
                    break
                for future in done:
                    index = futures[future]
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        needs_kill = True
                        outcomes[index].errors.append(
                            f"worker crashed (attempt {outcomes[index].attempts})"
                        )
                        failed_this_wave.append(index)
                    except Exception as exc:
                        outcomes[index].errors.append(
                            f"{type(exc).__name__}: {exc} "
                            f"(attempt {outcomes[index].attempts})"
                        )
                        failed_this_wave.append(index)
                    else:
                        outcomes[index].result = result
        finally:
            # A healthy pool stays alive for the next wave (and the
            # next run_units call); only broken/timed-out pools die.
            if needs_kill:
                _discard_shared_pool(kill=True)
        next_pending: List[int] = []
        for index in failed_this_wave:
            outcome = outcomes[index]
            if outcome.attempts >= policy.max_attempts:
                outcome.error = outcome.errors[-1]
            else:
                next_pending.append(index)
        pending = sorted(next_pending)
        if pending:
            sleep(policy.backoff(retry_round))
            retry_round += 1
    return outcomes
