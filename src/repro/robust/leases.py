"""The durable lease log behind the work-stealing scheduler.

A parallel evaluation decomposes into *tasks* (query groups — see
:mod:`repro.bench.parallel`).  Instead of handing each worker a fixed
batch, every worker loops over one shared, crash-safe, append-only
JSONL file — the lease log — and *claims* the first task that nobody
is working on.  The log records the full lifecycle::

    {"type": "lease_header", "version": 1}
    {"type": "claim", "task": [b, a, i, g], "worker": w, "attempt": n,
     "stolen_from": w2 | null, "t": seconds, "sha256": ...}
    {"type": "heartbeat", "worker": w, "t": seconds, "sha256": ...}
    {"type": "complete", "task": [...], "worker": w, "attempt": n,
     "fingerprint": f, "payload": {...}, "t": seconds, "sha256": ...}
    {"type": "release", "task": [...], "worker": w, "by": who,
     "attempt": n, "error": str, "t": seconds, "sha256": ...}
    {"type": "amnesty", "task": [...], "worker": w, "upto": n,
     "t": seconds, "sha256": ...}

Liveness is heartbeat-based: a claim is *live* while its worker's most
recent heartbeat (or the claim itself) is younger than the lease TTL.
A worker that is SIGKILLed or hangs simply stops heartbeating; once
the TTL passes, a sibling's :meth:`LeaseLog.claim_next` reclaims the
task with ``stolen_from`` naming the previous holder.  A worker whose
task *raised* releases its lease explicitly (``by`` = the worker
itself), which makes the next claim a retry, not a steal; the parent
scheduler force-releases leases of children it has watched die
(``by`` = ``"parent"``) so recovery does not wait out the TTL.

Execution is therefore at-least-once, and made safe by deterministic
dedup: the **first durable completion wins**.  A second completion of
the same task must carry a bit-identical semantic fingerprint (the
caller supplies it — for the bench harness, records with wall-clock
zeroed plus certificates); a mismatch raises
:class:`LeaseConsistencyError`, because two attempts of a pure task
disagreeing is corruption, not a race.

Attempt numbering is monotone across the log's whole life, but a
*resumed* run starts with a fresh retry budget: the parent appends an
``amnesty`` record per incomplete task (see
:meth:`LeaseLog.forgive_failures`), and "failed" means "exhausted
``max_attempts`` *since the last amnesty*" — otherwise a task that
timed out under yesterday's bug could never be retried by today's
``--resume``.

Crash discipline is shared with the rest of the robustness layer:
torn-tail-tolerant parsing via :func:`~repro.robust.checkpoint.scan_jsonl`
semantics (a dead writer's truncated final line is skipped on load and
truncated away before the next append; interior corruption raises),
every append is flushed and fsync'd, and — because several *processes*
append concurrently — all reads-for-append and writes happen under an
exclusive ``flock`` on ``path + ".lock"``, the shared-mode pattern of
:mod:`repro.serve.store`.  Every record carries a ``sha256`` of its
own canonical JSON (minus the field itself) so bit rot and hand-edits
are caught on load, mirroring the knowledge store's entry checksums.
"""

from __future__ import annotations

import fcntl
import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Claim",
    "LEASE_VERSION",
    "LeaseConsistencyError",
    "LeaseCorruption",
    "LeaseLog",
    "LeaseWatcher",
    "TaskKey",
    "lease_summary",
    "load_lease_records",
    "payload_fingerprint",
    "record_checksum",
    "verify_lease_log",
]

LEASE_VERSION = 1

#: ``(benchmark, analysis, unit index, group index)`` — the scheduler's
#: unit of work.  Group index ``0`` with one group per unit degenerates
#: to the checkpoint layer's whole-unit granularity.
TaskKey = Tuple[str, str, int, int]


class LeaseConsistencyError(RuntimeError):
    """Two completions of one task disagreed, or a resumed log does not
    describe this evaluation — determinism is broken, fail loudly."""


class LeaseCorruption(ValueError):
    """A lease record failed its checksum or the file is damaged in a
    way a crash cannot explain (interior corruption)."""


def record_checksum(record: dict) -> str:
    """sha256 over the record's sorted-keys JSON with the ``sha256``
    field itself excluded — the knowledge store's entry checksum,
    restated here so ``robust`` stays import-free of ``serve``."""
    body = {key: value for key, value in record.items() if key != "sha256"}
    return hashlib.sha256(
        json.dumps(body, sort_keys=True).encode("utf-8")
    ).hexdigest()


def payload_fingerprint(payload: dict, volatile: Sequence[str] = ()) -> str:
    """Semantic checksum of a completion payload: canonical JSON with
    the ``volatile`` top-level keys removed.  Callers name the fields
    an honest re-execution may legitimately change (wall-clock, cache
    counters, trace events); everything else must be bit-identical
    across attempts of the same task."""
    body = {k: v for k, v in payload.items() if k not in volatile}
    return hashlib.sha256(
        json.dumps(body, sort_keys=True).encode("utf-8")
    ).hexdigest()


class _LeaseLock:
    """Exclusive cross-process lock on ``path + ".lock"`` (never the
    log itself, mirroring :class:`repro.serve.store._StoreLock`)."""

    def __init__(self, path: str):
        self.path = path + ".lock"
        self._fd: Optional[int] = None

    def __enter__(self) -> "_LeaseLock":
        self._fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
        fcntl.flock(self._fd, fcntl.LOCK_EX)
        return self

    def __exit__(self, *exc) -> bool:
        fcntl.flock(self._fd, fcntl.LOCK_UN)
        os.close(self._fd)
        self._fd = None
        return False


def _scan_from(path: str, offset: int) -> Tuple[List[dict], int]:
    """Incremental :func:`~repro.robust.checkpoint.scan_jsonl`: parse
    complete lines from byte ``offset`` on; returns ``(records, new
    intact offset)``.  The same torn-tail rule applies — only the
    file's final line may be damaged; a corrupt line before the end
    raises :class:`LeaseCorruption`."""
    records: List[dict] = []
    if not os.path.exists(path):
        return records, offset
    with open(path, "rb") as handle:
        handle.seek(offset)
        data = handle.read()
    lines = data.splitlines(keepends=True)
    intact = offset
    position = offset
    for index, line in enumerate(lines):
        if not line.endswith(b"\n"):
            break  # torn tail from a writer killed mid-append
        position += len(line)
        text = line.decode("utf-8", errors="replace").strip()
        if not text:
            intact = position
            continue
        record: Optional[dict] = None
        try:
            parsed = json.loads(text)
            if isinstance(parsed, dict):
                record = parsed
        except ValueError:
            record = None
        if record is None:
            if index == len(lines) - 1:
                break
            raise LeaseCorruption(
                f"{path}: corrupt lease record at byte {position} "
                "(not a trailing crash artifact)"
            )
        records.append(record)
        intact = position
    return records, intact


def load_lease_records(path: str) -> List[dict]:
    """Every intact record of a lease log (missing file = empty),
    checksums verified."""
    records, _intact = _scan_from(path, 0)
    for index, record in enumerate(records):
        stored = record.get("sha256")
        if stored is not None and stored != record_checksum(record):
            raise LeaseCorruption(
                f"{path}: record {index} fails its checksum"
            )
    return records


@dataclass(frozen=True)
class Claim:
    """One successful :meth:`LeaseLog.claim_next`."""

    task: TaskKey
    attempt: int  # 1-based claim count for this task
    stolen_from: Optional[str]  # previous holder, when reclaimed


class LeaseLog:
    """One process's handle on the shared lease log.

    Thread-safe (the heartbeat thread and the task loop share one
    instance); every mutation syncs the tail, truncates a dead
    writer's torn line, appends, and fsyncs — all under the flock.
    """

    def __init__(self, path: str, worker: str, fresh: bool = False):
        self.path = path
        self.worker = worker
        self._mutex = threading.Lock()
        self._offset = 0
        self._claims: Dict[TaskKey, dict] = {}
        self._attempts: Dict[TaskKey, int] = {}
        self._completes: Dict[TaskKey, dict] = {}
        self._releases: Dict[Tuple[TaskKey, int], dict] = {}
        self._amnesty: Dict[TaskKey, int] = {}
        self._beats: Dict[str, float] = {}
        #: Local operation counters (this process's view).
        self.claims = 0
        self.steals = 0
        self.duplicates = 0
        self.heartbeats = 0
        with self._mutex, _LeaseLock(path):
            if fresh and os.path.exists(path):
                with open(path, "w"):
                    pass
            self._sync_locked()
            if self._offset == 0:
                self._append_locked(
                    {"type": "lease_header", "version": LEASE_VERSION}
                )

    # -- shared-file plumbing (call under mutex + flock) -------------------

    def _ingest(self, record: dict) -> None:
        stored = record.get("sha256")
        if stored is not None and stored != record_checksum(record):
            raise LeaseCorruption(
                f"{self.path}: lease record fails its checksum"
            )
        rtype = record.get("type")
        if rtype == "lease_header":
            version = record.get("version")
            if version != LEASE_VERSION:
                raise LeaseConsistencyError(
                    f"{self.path}: unsupported lease log version {version!r}"
                )
        elif rtype == "claim":
            task = tuple(record["task"])
            self._claims[task] = record
            self._attempts[task] = max(
                self._attempts.get(task, 0), int(record["attempt"])
            )
        elif rtype == "heartbeat":
            worker = record["worker"]
            self._beats[worker] = max(
                self._beats.get(worker, 0.0), float(record["t"])
            )
        elif rtype == "complete":
            task = tuple(record["task"])
            # First durable completion wins; later records for the
            # same task are the at-least-once duplicates.
            self._completes.setdefault(task, record)
        elif rtype == "release":
            task = tuple(record["task"])
            self._releases[(task, int(record["attempt"]))] = record
        elif rtype == "amnesty":
            task = tuple(record["task"])
            self._amnesty[task] = max(
                self._amnesty.get(task, 0), int(record["upto"])
            )
        # unknown record types are forward-compatible noise

    def _sync_locked(self) -> None:
        records, self._offset = _scan_from(self.path, self._offset)
        for record in records:
            self._ingest(record)

    def _append_locked(self, record: dict) -> None:
        record = dict(record)
        record["sha256"] = record_checksum(record)
        size = os.path.getsize(self.path) if os.path.exists(self.path) else 0
        if size > self._offset:
            # A writer died mid-append: truncate its torn tail so our
            # record is never concatenated onto it.
            with open(self.path, "r+b") as handle:
                handle.truncate(self._offset)
        with open(self.path, "a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._offset += len(
            (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        )
        self._ingest(record)

    # -- task-state queries -------------------------------------------------

    def _live_claim(
        self, task: TaskKey, ttl: float, now: float
    ) -> Optional[dict]:
        claim = self._claims.get(task)
        if claim is None:
            return None
        if task in self._completes:
            return None  # fulfilled, not held — nothing left to expire
        if (task, int(claim["attempt"])) in self._releases:
            return None
        worker = claim["worker"]
        last = max(float(claim["t"]), self._beats.get(worker, 0.0))
        if now - last >= ttl:
            return None
        return claim

    def _status(
        self, task: TaskKey, ttl: float, max_attempts: int, now: float
    ) -> str:
        if task in self._completes:
            return "complete"
        if self._live_claim(task, ttl, now) is not None:
            return "running"
        spent = self._attempts.get(task, 0) - self._amnesty.get(task, 0)
        if spent >= max_attempts:
            return "failed"
        return "pending"

    def snapshot(
        self,
        tasks: Sequence[TaskKey],
        ttl: float,
        max_attempts: int,
        now: Optional[float] = None,
    ) -> Dict[TaskKey, str]:
        """Per-task status after folding in siblings' appends."""
        with self._mutex, _LeaseLock(self.path):
            self._sync_locked()
            now = time.time() if now is None else now
            return {
                task: self._status(task, ttl, max_attempts, now)
                for task in tasks
            }

    # -- the protocol -------------------------------------------------------

    def claim_next(
        self,
        tasks: Sequence[TaskKey],
        ttl: float,
        max_attempts: int,
        now: Optional[float] = None,
    ) -> Optional[Claim]:
        """Atomically claim the first claimable task in ``tasks`` order
        (fresh, retry after a voluntary release, or steal of an expired
        lease); ``None`` when nothing is claimable right now."""
        with self._mutex, _LeaseLock(self.path):
            self._sync_locked()
            now = time.time() if now is None else now
            for task in tasks:
                if self._status(task, ttl, max_attempts, now) != "pending":
                    continue
                previous = self._claims.get(task)
                stolen_from: Optional[str] = None
                if previous is not None:
                    release = self._releases.get(
                        (task, int(previous["attempt"]))
                    )
                    voluntary = (
                        release is not None
                        and release.get("by") == previous["worker"]
                    )
                    if not voluntary:
                        # The previous holder went silent (TTL expiry)
                        # or was declared dead by the parent: this
                        # claim is a steal, not a retry.
                        stolen_from = previous["worker"]
                attempt = self._attempts.get(task, 0) + 1
                self._append_locked(
                    {
                        "type": "claim",
                        "task": list(task),
                        "worker": self.worker,
                        "attempt": attempt,
                        "stolen_from": stolen_from,
                        "t": now,
                    }
                )
                self.claims += 1
                if stolen_from is not None:
                    self.steals += 1
                return Claim(
                    task=task, attempt=attempt, stolen_from=stolen_from
                )
            return None

    def heartbeat(self, now: Optional[float] = None) -> None:
        with self._mutex, _LeaseLock(self.path):
            self._sync_locked()
            self._append_locked(
                {
                    "type": "heartbeat",
                    "worker": self.worker,
                    "t": time.time() if now is None else now,
                }
            )
            self.heartbeats += 1

    def complete(
        self,
        task: TaskKey,
        attempt: int,
        payload: dict,
        fingerprint: str,
    ) -> bool:
        """Record a completion; returns ``True`` when this completion
        is the durable winner, ``False`` when an earlier one already
        was (in which case the fingerprints are asserted identical —
        at-least-once execution is only safe because the task is a
        pure function of its key)."""
        with self._mutex, _LeaseLock(self.path):
            self._sync_locked()
            existing = self._completes.get(task)
            if existing is not None:
                if existing.get("fingerprint") != fingerprint:
                    raise LeaseConsistencyError(
                        f"task {task!r}: duplicate completion disagrees "
                        f"with the durable winner (attempt "
                        f"{existing.get('attempt')} by "
                        f"{existing.get('worker')!r}) — determinism broken"
                    )
                self.duplicates += 1
                return False
            self._append_locked(
                {
                    "type": "complete",
                    "task": list(task),
                    "worker": self.worker,
                    "attempt": attempt,
                    "fingerprint": fingerprint,
                    "payload": payload,
                    "t": time.time(),
                }
            )
            return True

    def release(
        self,
        task: TaskKey,
        attempt: int,
        error: str,
        by: Optional[str] = None,
    ) -> None:
        """Give a lease back: voluntarily (``by`` defaults to this
        worker — the task raised) or on another's behalf (the parent
        releasing a dead child's leases, ``by="parent"``)."""
        with self._mutex, _LeaseLock(self.path):
            self._sync_locked()
            if task in self._completes:
                return
            self._append_locked(
                {
                    "type": "release",
                    "task": list(task),
                    "worker": self.worker,
                    "by": by if by is not None else self.worker,
                    "attempt": attempt,
                    "error": error,
                    "t": time.time(),
                }
            )

    def forgive_failures(self, tasks: Sequence[TaskKey]) -> int:
        """Grant every incomplete task with prior claims a fresh retry
        budget (append one ``amnesty`` record per task).  Called by the
        parent when a run *resumes* an existing log: completed tasks
        stay done, but a task that exhausted ``max_attempts`` in the
        previous run — or died mid-flight — is claimable again instead
        of being failed forever.  Returns how many were forgiven."""
        forgiven = 0
        with self._mutex, _LeaseLock(self.path):
            self._sync_locked()
            for task in tasks:
                attempts = self._attempts.get(task, 0)
                if task in self._completes or attempts == 0:
                    continue
                if self._amnesty.get(task, 0) >= attempts:
                    continue
                self._append_locked(
                    {
                        "type": "amnesty",
                        "task": list(task),
                        "worker": self.worker,
                        "upto": attempts,
                        "t": time.time(),
                    }
                )
                forgiven += 1
        return forgiven

    def holder(self, task: TaskKey, ttl: float, now: Optional[float] = None):
        """``(worker, attempt)`` of the live claim, or ``None``."""
        with self._mutex, _LeaseLock(self.path):
            self._sync_locked()
            claim = self._live_claim(
                task, ttl, time.time() if now is None else now
            )
            if claim is None:
                return None
            return claim["worker"], int(claim["attempt"])

    def completed_payloads(self) -> Dict[TaskKey, dict]:
        """Payloads of every durably-won completion (first wins)."""
        with self._mutex, _LeaseLock(self.path):
            self._sync_locked()
            return {
                task: record["payload"]
                for task, record in self._completes.items()
            }

    def attempts_of(self, task: TaskKey) -> int:
        return self._attempts.get(task, 0)

    def last_error(self, task: TaskKey) -> Optional[str]:
        """The most recent release error recorded for ``task``."""
        best: Optional[dict] = None
        for (released_task, attempt), record in self._releases.items():
            if released_task != task:
                continue
            if best is None or attempt > int(best["attempt"]):
                best = record
        return None if best is None else best.get("error")

    def close(self) -> None:  # symmetry with the other appenders
        pass

    def __enter__(self) -> "LeaseLog":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


class LeaseWatcher:
    """Lock-free incremental reader for monitors (the parent
    scheduler's event loop, ``repro top --leases``).

    Reads never take the flock — :func:`_scan_from` already tolerates
    the one torn line a concurrent append can expose — so watching
    never delays the workers."""

    def __init__(self, path: str, start_at_end: bool = False):
        self.path = path
        self._offset = 0
        if start_at_end:
            for _ in self.poll():
                pass

    def poll(self) -> List[dict]:
        """Records appended since the last poll (checksum-verified)."""
        records, offset = _scan_from(self.path, self._offset)
        fresh: List[dict] = []
        for record in records:
            stored = record.get("sha256")
            if stored is not None and stored != record_checksum(record):
                raise LeaseCorruption(
                    f"{self.path}: lease record fails its checksum"
                )
            fresh.append(record)
        # Only advance past lines that parsed; a torn tail is re-read
        # next poll once the writer (or the truncating appender) fixed it.
        self._offset = offset
        return fresh


def lease_summary(
    records: Sequence[dict],
    ttl: Optional[float] = None,
    now: Optional[float] = None,
) -> dict:
    """Fold a record list into per-task state + scheduler counters —
    what ``repro top --leases`` renders and ``verify`` reports."""
    tasks: Dict[str, dict] = {}
    beats: Dict[str, float] = {}
    counters = {
        "claims": 0,
        "steals": 0,
        "releases": 0,
        "completions": 0,
        "duplicates": 0,
        "heartbeats": 0,
    }
    for record in records:
        rtype = record.get("type")
        if rtype == "heartbeat":
            counters["heartbeats"] += 1
            worker = record.get("worker", "?")
            beats[worker] = max(beats.get(worker, 0.0), float(record["t"]))
            continue
        if rtype not in ("claim", "complete", "release"):
            continue
        key = ":".join(str(part) for part in record.get("task", []))
        state = tasks.setdefault(
            key,
            {
                "status": "pending",
                "worker": None,
                "attempts": 0,
                "stolen": 0,
                "claimed_at": None,
            },
        )
        if rtype == "claim":
            counters["claims"] += 1
            state["attempts"] = max(
                state["attempts"], int(record.get("attempt", 0))
            )
            state["worker"] = record.get("worker")
            state["claimed_at"] = float(record.get("t", 0.0))
            if state["status"] != "complete":
                state["status"] = "running"
            if record.get("stolen_from"):
                counters["steals"] += 1
                state["stolen"] += 1
        elif rtype == "release":
            counters["releases"] += 1
            if state["status"] != "complete":
                state["status"] = "released"
        else:
            counters["completions"] += 1
            if state["status"] != "complete":
                state["status"] = "complete"
                state["worker"] = record.get("worker")
            else:
                counters["duplicates"] += 1
    if ttl is not None:
        at = time.time() if now is None else now
        for state in tasks.values():
            if state["status"] == "running":
                worker = state["worker"]
                last = max(
                    state["claimed_at"] or 0.0, beats.get(worker, 0.0)
                )
                if at - last >= ttl:
                    state["status"] = "expired"
    by_status: Dict[str, int] = {}
    for state in tasks.values():
        by_status[state["status"]] = by_status.get(state["status"], 0) + 1
    return {
        "tasks": tasks,
        "workers": beats,
        "counters": counters,
        "by_status": by_status,
    }


def verify_lease_log(path: str) -> Tuple[List[str], dict]:
    """Structural + checksum audit of a lease log; returns ``(problems,
    summary)`` with an empty problem list meaning the log is sound."""
    problems: List[str] = []
    try:
        records = load_lease_records(path)
    except (LeaseCorruption, LeaseConsistencyError) as error:
        return [str(error)], {}
    if not records:
        return ["empty lease log (missing header)"], {}
    if records[0].get("type") != "lease_header":
        problems.append("first record is not a lease_header")
    claims: Dict[Tuple[str, int], dict] = {}
    completes: Dict[str, dict] = {}
    for index, record in enumerate(records):
        rtype = record.get("type")
        where = f"record {index}"
        if rtype == "claim":
            key = ":".join(str(p) for p in record.get("task", []))
            attempt = int(record.get("attempt", 0))
            if attempt < 1:
                problems.append(f"{where}: claim with attempt {attempt}")
            if (key, attempt) in claims:
                problems.append(
                    f"{where}: duplicate claim for {key} attempt {attempt}"
                )
            previous = max(
                (a for (k, a) in claims if k == key), default=0
            )
            if attempt != previous + 1:
                problems.append(
                    f"{where}: claim attempt {attempt} for {key} does not "
                    f"follow attempt {previous}"
                )
            claims[(key, attempt)] = record
        elif rtype == "complete":
            key = ":".join(str(p) for p in record.get("task", []))
            attempt = int(record.get("attempt", 0))
            if (key, attempt) not in claims:
                problems.append(
                    f"{where}: completion of {key} attempt {attempt} "
                    "without a matching claim"
                )
            first = completes.get(key)
            if first is None:
                completes[key] = record
            elif first.get("fingerprint") != record.get("fingerprint"):
                problems.append(
                    f"{where}: duplicate completion of {key} disagrees "
                    "with the durable winner"
                )
        elif rtype == "release":
            key = ":".join(str(p) for p in record.get("task", []))
            attempt = int(record.get("attempt", 0))
            if (key, attempt) not in claims:
                problems.append(
                    f"{where}: release of {key} attempt {attempt} "
                    "without a matching claim"
                )
    return problems, lease_summary(records)
