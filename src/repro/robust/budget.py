"""Cooperative wall-clock and step budgets for long-running loops.

``TracerConfig.max_seconds`` used to be checked only *between* CEGAR
iterations, so a single runaway forward fixpoint or backward sweep
could sail arbitrarily far past the deadline.  A :class:`Budget` makes
the deadline cooperative: the hot loops (the forward worklists, the
backward meta-analysis) call :func:`tick` — a near-free no-op when no
budget is installed — and the budget raises :class:`BudgetExceeded`
from *inside* the overrunning loop, which the TRACER driver resolves
to ``QueryStatus.EXHAUSTED`` deterministically.

Two resources are tracked:

* a **wall-clock deadline** (``max_seconds`` from creation, measured
  on an injectable clock so tests can drive it deterministically);
  the clock is only consulted every ``check_every`` ticks to keep the
  per-tick cost to an integer decrement;
* a **step budget** (``max_steps``): a count of transfer-function
  applications / backward commands, which is a deterministic,
  machine-independent notion of effort (the analogue of the paper's
  iteration budget at a finer grain).

Budgets install ambiently (:class:`budget_scope`), exactly like the
tracing context in :mod:`repro.obs.trace`: the instrumented loops
never need a budget threaded through their signatures, and when no
budget is active the instrumentation costs one global read.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = [
    "Budget",
    "BudgetExceeded",
    "budget_scope",
    "checkpoint",
    "current_budget",
    "tick",
]


class BudgetExceeded(RuntimeError):
    """A cooperative budget ran out mid-loop.

    ``reason`` is ``"deadline"`` or ``"steps"``; ``steps`` is the tick
    count at the moment the budget tripped.
    """

    def __init__(self, reason: str, steps: int):
        super().__init__(f"budget exceeded ({reason} after {steps} steps)")
        self.reason = reason
        self.steps = steps


class Budget:
    """One deadline + step allowance, checked cooperatively via ticks."""

    __slots__ = ("clock", "deadline", "max_steps", "steps", "check_every", "_countdown")

    def __init__(
        self,
        max_seconds: Optional[float] = None,
        max_steps: Optional[float] = None,
        clock: Callable[[], float] = time.perf_counter,
        check_every: int = 64,
    ):
        if check_every <= 0:
            raise ValueError("check_every must be positive")
        self.clock = clock
        self.deadline = None if max_seconds is None else clock() + max_seconds
        self.max_steps = max_steps
        self.steps = 0
        self.check_every = check_every
        self._countdown = check_every

    def tick(self, n: int = 1) -> None:
        """Record ``n`` units of work; raise :class:`BudgetExceeded`
        when either resource is spent.  The clock is read every
        ``check_every`` ticks."""
        self.steps += n
        if self.max_steps is not None and self.steps > self.max_steps:
            raise BudgetExceeded("steps", self.steps)
        self._countdown -= n
        if self._countdown <= 0:
            self._countdown = self.check_every
            if self.deadline is not None and self.clock() >= self.deadline:
                raise BudgetExceeded("deadline", self.steps)

    def checkpoint(self) -> None:
        """A tick that always consults the clock — for coarse-grained
        loops (one backward command may hide a lot of formula work)."""
        self.steps += 1
        if self.max_steps is not None and self.steps > self.max_steps:
            raise BudgetExceeded("steps", self.steps)
        if self.deadline is not None and self.clock() >= self.deadline:
            raise BudgetExceeded("deadline", self.steps)

    def remaining_seconds(self) -> Optional[float]:
        if self.deadline is None:
            return None
        return self.deadline - self.clock()


#: The ambient budget, or ``None`` (no budget — the default).  Like the
#: trace context this is process-local by design: the evaluation
#: parallelises across processes, never threads.
_CURRENT: Optional[Budget] = None


def current_budget() -> Optional[Budget]:
    """The installed :class:`Budget`, or ``None``."""
    return _CURRENT


def tick(n: int = 1) -> None:
    """Charge the ambient budget (no-op when none is installed).

    This is the call the forward worklist loops make once per transfer
    application; when no budget is active it is one global read and a
    ``None`` check."""
    budget = _CURRENT
    if budget is not None:
        budget.tick(n)


def checkpoint() -> None:
    """Charge the ambient budget with a forced deadline check (no-op
    when none is installed) — one per backward meta-analysis command."""
    budget = _CURRENT
    if budget is not None:
        budget.checkpoint()


class budget_scope:
    """Install a budget for a ``with`` block; scopes nest (the inner
    budget temporarily replaces the outer one)."""

    def __init__(self, budget: Optional[Budget]):
        self._budget = budget
        self._previous: Optional[Budget] = None

    def __enter__(self) -> Optional[Budget]:
        global _CURRENT
        self._previous = _CURRENT
        _CURRENT = self._budget
        return self._budget

    def __exit__(self, *exc) -> bool:
        global _CURRENT
        _CURRENT = self._previous
        return False
