"""Append-only JSONL journal of the TRACER search — crash recovery
*mid-query*, not just between evaluation units.

The grouped driver (:func:`repro.core.tracer.run_query_group`) appends
one record per executed group-round: the chosen abstraction, the
forward verdict per member, every learned failure clause together with
the counterexample trace that justified it, degradation steps, and the
time/step charges.  Records are flushed and fsync'd as they are
written (:class:`repro.robust.checkpoint.JsonlAppender`), so a SIGKILL
at any instant loses at most the round in flight.

On ``--resume-journal`` the driver *replays* the recorded rounds
before going live: learned clauses feed straight back into the
:class:`~repro.core.viability.ViabilityStore` (so already-refuted
abstractions are never re-run), group splits are reproduced from the
recorded clause signatures, and per-query counters (iterations,
forward runs, time and step charges) are restored from the record —
which is what makes a resumed verdict bit-identical to an
uninterrupted one, including the certificate evidence.  Each replayed
round is integrity-checked against the store: the recomputed
minimum-cost abstraction must equal the recorded one, and every
replayed clause set must still exclude it; a journal that fails those
checks (stale, foreign, or tampered) raises :class:`JournalMismatch`
rather than replaying garbage.

Record types (``journal_header`` first, then ``round`` records in
execution order)::

    {"type": "journal_header", "version": 1, "queries": [qid, ...]}
    {"type": "round", "round": N, "queries": [qid, ...],
     "outcome": "ok" | "budget" | "error" | "impossible",
     "reason": str | null,            # budget/error outcomes
     "abstraction": [var, ...] | null, "cached": bool,
     "seconds": float, "steps": float,  # shared charges of the round
     "proven": [qid, ...],
     "survivors": [{"query": qid, "outcome": "clauses" | "budget" |
                    "explosion" | "error", "seconds": float,
                    "steps": float, "k": int | null,
                    "max_disjuncts": int, "degraded": [[from,to],...],
                    "trace": [command, ...],
                    "clauses": [[[var, sign], ...], ...]}, ...],
     "exhausted": [qid, ...]}          # end-of-round cap resolutions

Clauses serialise as sorted ``[variable, sign]`` literal lists and
traces as tagged command dicts (:func:`trace_to_jsonable`); both
round-trip exactly for every bundled client, whose parameter variables
are strings.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.lang.ast import (
    Assign,
    AssignNull,
    AtomicCommand,
    CallProc,
    Invoke,
    LoadField,
    LoadGlobal,
    New,
    Observe,
    StoreField,
    StoreGlobal,
    ThreadStart,
    Trace,
)
from repro.robust.checkpoint import JsonlAppender, scan_jsonl

__all__ = [
    "JournalMismatch",
    "RoundCollector",
    "SearchJournal",
    "clause_from_jsonable",
    "clause_to_jsonable",
    "command_from_dict",
    "command_to_dict",
    "load_journal",
    "trace_from_jsonable",
    "trace_to_jsonable",
]

JOURNAL_VERSION = 1


class JournalMismatch(ValueError):
    """The journal being resumed does not describe this search — a
    stale file, a different query set, or a tampered record."""


# -- codecs -------------------------------------------------------------------

_COMMAND_TYPES = {
    cls.__name__: cls
    for cls in (
        New,
        Assign,
        AssignNull,
        LoadGlobal,
        StoreGlobal,
        LoadField,
        StoreField,
        Invoke,
        ThreadStart,
        Observe,
        CallProc,
    )
}


def command_to_dict(command: AtomicCommand) -> dict:
    data = {"cmd": type(command).__name__}
    for f in dataclasses.fields(command):
        data[f.name] = getattr(command, f.name)
    return data


def command_from_dict(data: dict) -> AtomicCommand:
    kind = data.get("cmd")
    cls = _COMMAND_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown atomic command kind {kind!r}")
    return cls(**{k: v for k, v in data.items() if k != "cmd"})


def trace_to_jsonable(trace: Trace) -> List[dict]:
    return [command_to_dict(command) for command in trace]


def trace_from_jsonable(items: List[dict]) -> Trace:
    return tuple(command_from_dict(item) for item in items)


def clause_to_jsonable(clause) -> List[List]:
    """One failure clause as a sorted ``[variable, sign]`` literal
    list; deterministic across processes (frozenset iteration order is
    not)."""
    return sorted([var, bool(sign)] for var, sign in clause)


def clause_from_jsonable(items: List[List]) -> frozenset:
    return frozenset((var, bool(sign)) for var, sign in items)


# -- the journal --------------------------------------------------------------


def load_journal(path: str) -> Tuple[Optional[dict], List[dict]]:
    """Read ``(header, round records)`` from a journal file, skipping a
    trailing torn line; raises on interior corruption or an unknown
    version."""
    records, _intact = scan_jsonl(path)
    header: Optional[dict] = None
    rounds: List[dict] = []
    for record in records:
        rtype = record.get("type")
        if rtype == "journal_header":
            version = record.get("version")
            if version != JOURNAL_VERSION:
                raise ValueError(
                    f"{path}: unsupported journal version {version!r}"
                )
            header = record
        elif rtype == "round":
            rounds.append(record)
        # other record types are forward-compatible noise
    return header, rounds


class SearchJournal:
    """One ``run_query_group`` call's journal: a replay cursor over the
    recorded rounds plus a crash-safe appender for new ones.

    ``resume=False`` starts a fresh journal (an existing file is
    truncated — a journal describes exactly one search); ``resume=True``
    loads the recorded rounds for replay and appends the live rounds
    that follow them."""

    def __init__(self, path: str, resume: bool = False):
        self.path = path
        self.replayed_rounds = 0
        self._cursor = 0
        self._rounds: List[dict] = []
        self._header: Optional[dict] = None
        if resume:
            self._header, self._rounds = load_journal(path)
            if self._header is None and self._rounds:
                raise ValueError(f"{path}: journal has rounds but no header")
            self._appender = JsonlAppender(path)
        else:
            # A fresh journal: drop any previous contents.
            with open(path, "w"):
                pass
            self._appender = JsonlAppender(path)
        self._replaying = resume and bool(self._rounds)

    @property
    def replaying(self) -> bool:
        return self._replaying

    def begin(self, query_ids: List[str]) -> None:
        """Open the journal for this query set: validate the header on
        resume, write it on a fresh run."""
        if self._header is not None:
            recorded = self._header.get("queries")
            if recorded != list(query_ids):
                raise JournalMismatch(
                    f"{self.path}: journal was recorded for queries "
                    f"{recorded!r}, not {list(query_ids)!r}"
                )
        else:
            header = {
                "type": "journal_header",
                "version": JOURNAL_VERSION,
                "queries": list(query_ids),
            }
            self._appender.append(header)
            self._header = header

    def replay_round(self, query_ids: List[str]) -> Optional[dict]:
        """The next recorded round if it matches the group about to
        run, else ``None`` (the journal is exhausted and the search
        goes live).  A recorded round for a *different* group is a
        divergence and raises — replay is all-or-nothing up to the
        crash point."""
        if not self._replaying:
            return None
        if self._cursor >= len(self._rounds):
            self._replaying = False
            return None
        record = self._rounds[self._cursor]
        if record.get("queries") != list(query_ids):
            raise JournalMismatch(
                f"{self.path}: round {record.get('round')} was recorded "
                f"for group {record.get('queries')!r}, but the search "
                f"reached group {list(query_ids)!r}"
            )
        self._cursor += 1
        self.replayed_rounds += 1
        return record

    def record_round(self, record: dict) -> None:
        """Append one live round (no-op while still replaying — the
        record is already on disk)."""
        if self._replaying:
            return
        self._appender.append(dict(record, type="round"))

    def close(self) -> None:
        self._appender.close()

    def __enter__(self) -> "SearchJournal":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


class RoundCollector:
    """An in-memory journal sink, duck-typed like :class:`SearchJournal`.

    The session layer (:mod:`repro.serve.session`) passes one of these
    as the driver's ``journal`` to capture the executed rounds for the
    knowledge store without touching disk; when ``inner`` is given
    (the caller's real journal), every call is forwarded to it too, so
    the on-disk journal stays byte-identical to what the driver would
    have written directly.  Never replays — replay belongs to the real
    journal or to :class:`~repro.core.tracer.WarmStart`."""

    def __init__(self, inner=None):
        self.inner = inner
        self.query_ids: Optional[List[str]] = None
        self.rounds: List[dict] = []

    @property
    def replaying(self) -> bool:
        return False

    def begin(self, query_ids: List[str]) -> None:
        self.query_ids = list(query_ids)
        if self.inner is not None:
            self.inner.begin(query_ids)

    def replay_round(self, query_ids: List[str]) -> Optional[dict]:
        return None

    def record_round(self, record: dict) -> None:
        self.rounds.append({k: v for k, v in record.items() if k != "type"})
        if self.inner is not None:
            self.inner.record_round(record)

    def close(self) -> None:
        # The inner journal belongs to the caller; leave it open.
        pass
