"""Graceful degradation of the backward meta-analysis beam.

The paper's under-approximation (Section 5) exists because the exact
meta-analysis blows up; our :class:`~repro.core.formula.FormulaExplosion`
is the runtime face of that blow-up.  Instead of giving up on a query
at the first explosion, the driver walks a *degradation ladder*: retry
the backward pass with the beam width halved, down to a floor, and
only declare the query EXHAUSTED once the narrowest beam still
explodes.  A narrower beam yields a weaker (but still sound, by
Theorem 3.1) failure condition — fewer abstractions are eliminated per
iteration, which costs iterations, not correctness.  This mirrors
Beyer & Löwe's precision-lowering refinement fallback.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple, TypeVar

from repro.core.formula import FormulaExplosion

__all__ = ["DEFAULT_FALLBACK_K", "beam_ladder", "run_with_degradation"]

T = TypeVar("T")

#: First finite beam width tried when the configured ``k`` is ``None``
#: (beam disabled) and the unbeamed pass explodes.
DEFAULT_FALLBACK_K = 8


def beam_ladder(k: Optional[int], k_min: int = 1) -> List[Optional[int]]:
    """The beam widths to try, widest first: ``k``, then repeated
    halvings down to ``k_min``.  ``k=None`` (no beam) degrades to
    :data:`DEFAULT_FALLBACK_K` and halves from there."""
    if k_min < 1:
        raise ValueError("k_min must be at least 1")
    ladder: List[Optional[int]] = [k]
    width = DEFAULT_FALLBACK_K if k is None else k
    if k is None:
        ladder.append(width)
    while width > k_min:
        width = max(width // 2, k_min)
        ladder.append(width)
    return ladder


def run_with_degradation(
    run: Callable[[Optional[int]], T],
    k: Optional[int],
    k_min: int = 1,
    on_degrade: Optional[Callable[[Optional[int], int], None]] = None,
) -> Tuple[T, Optional[int]]:
    """Call ``run(k)`` retrying down :func:`beam_ladder` on
    :class:`FormulaExplosion`.

    ``on_degrade(failed_k, next_k)`` is invoked before each retry (the
    driver emits its ``degraded`` trace event there).  Returns the
    result and the beam width that produced it; re-raises the last
    :class:`FormulaExplosion` when even ``k_min`` explodes.
    """
    ladder = beam_ladder(k, k_min)
    for position, width in enumerate(ladder):
        try:
            return run(width), width
        except FormulaExplosion:
            if position + 1 >= len(ladder):
                raise
            if on_degrade is not None:
                on_degrade(width, ladder[position + 1])
    raise AssertionError("unreachable: ladder is never empty")
