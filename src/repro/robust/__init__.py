"""Fault-tolerant solver runtime: budgets, fault injection, graceful
degradation, and a crash-surviving parallel harness.

The pieces (see ``docs/ROBUSTNESS.md`` for the full story):

* :mod:`repro.robust.budget` — cooperative wall-clock/step budgets the
  forward worklists and the backward meta-analysis honour mid-loop;
* :mod:`repro.robust.faults` — deterministic, replayable fault
  injection keyed on the observability span sites;
* :mod:`repro.robust.degrade` — the beam-width degradation ladder the
  TRACER driver walks on formula explosions;
* :mod:`repro.robust.pool` — a process pool with per-unit timeouts,
  ``BrokenProcessPool`` recovery, and bounded retries;
* :mod:`repro.robust.checkpoint` — JSONL checkpoints of completed
  evaluation units behind ``repro eval --resume``;
* :mod:`repro.robust.journal` — the append-only CEGAR search journal
  behind ``--journal`` / ``--resume-journal``;
* :mod:`repro.robust.certify` — verdict certificates and their
  independent checker (``--certify-out`` / ``repro certify``).

:mod:`repro.robust.certify` is deliberately *not* re-exported here:
it imports :mod:`repro.core.selfcheck` (and through it the meta
machinery), which itself imports :mod:`repro.robust.budget` — pulling
certify in at package-import time would re-enter this partially
initialised package.  Import it as ``repro.robust.certify`` directly.
"""

from repro.robust.budget import (
    Budget,
    BudgetExceeded,
    budget_scope,
    current_budget,
)
from repro.robust.degrade import beam_ladder, run_with_degradation
from repro.robust.faults import (
    FaultPlan,
    FaultRule,
    InjectedFault,
    current_plan,
    fault_scope,
)
from repro.robust.journal import JournalMismatch, SearchJournal

__all__ = [
    "Budget",
    "BudgetExceeded",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "JournalMismatch",
    "SearchJournal",
    "beam_ladder",
    "budget_scope",
    "current_budget",
    "current_plan",
    "fault_scope",
    "run_with_degradation",
]
