"""The lease-based work-stealing scheduler.

:func:`run_leased` replaces the wave model of
:func:`repro.robust.pool.run_units` for parallel evaluation: instead
of the parent assigning fixed batches and waiting out each wave,
every worker process loops over one shared durable
:class:`~repro.robust.leases.LeaseLog`, claiming the first unowned
task, heartbeating while it works, and durably completing — so the
schedule emerges from the log, survives any worker's death, and a
straggler's remaining tasks are picked up by whoever finishes first.

Failure handling, in order of preference:

* a task that **raises** releases its lease voluntarily — the next
  claim is a retry (up to ``max_attempts``), charged against the task;
* a worker that is **SIGKILLed** is noticed by the parent supervisor
  (``Process.is_alive()``), which force-releases its live leases
  immediately (``by="parent"``) so siblings reclaim without waiting
  out the TTL;
* a worker that **hangs** (alive but silent) simply stops
  heartbeating; once ``lease_ttl`` passes, a sibling's ``claim_next``
  steals the lease outright.

All three paths converge on at-least-once execution with
first-durable-completion-wins dedup (see :mod:`repro.robust.leases`),
so the caller's merge never sees a task twice and never sees two
disagreeing results.

The parent is a supervisor, not a scheduler: it spawns the workers,
tails the log through a :class:`~repro.robust.leases.LeaseWatcher` to
re-emit ``lease_claimed`` / ``lease_expired`` / ``lease_stolen``
events into its own trace, force-releases dead workers' leases,
respawns one *clean* worker (no fault plan — chaos plans are not
reinstalled on respawn) if every worker has died or gone silent while
work remains, and finally collects the winning payloads off the log.

Fault injection mirrors the wave pool's conventions: each worker
installs its plan per task with ``attempt = claim.attempt - 1`` (the
0-based unit-attempt number rules are written against) and resets hit
counters per task, reproducing the per-process-per-task counting that
pickling gave the wave pool.  Two scheduler-specific sites exist:
``"scheduler.task"`` fires on every claimed task, and a ``corrupt``
match on ``"scheduler.hang"`` makes the worker stop heartbeating and
sleep forever — the deterministic stand-in for a livelocked process
that chaos tests use to exercise TTL-based stealing.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import trace as obs
from repro.robust import faults as robust_faults
from repro.robust.faults import FaultPlan, fault_scope
from repro.robust.leases import (
    Claim,
    LeaseConsistencyError,
    LeaseLog,
    LeaseWatcher,
    TaskKey,
)

__all__ = ["SchedulerResult", "run_leased"]

#: ``execute(task) -> (payload, fingerprint)`` — the pure task body.
#: ``payload`` must be a JSON-able dict (it is stored in the lease
#: log); ``fingerprint`` is its semantic checksum (see
#: :func:`repro.robust.leases.payload_fingerprint`), asserted
#: bit-identical across duplicate completions.
ExecuteFn = Callable[[TaskKey], Tuple[dict, str]]


@dataclass
class SchedulerResult:
    """What one :func:`run_leased` run produced."""

    #: Winning payload per durably-completed task.
    payloads: Dict[TaskKey, dict]
    #: Last recorded error per task that exhausted ``max_attempts``.
    failed: Dict[TaskKey, str]
    #: Claim count per task (1 = first try; >1 = retried or stolen).
    attempts: Dict[TaskKey, int] = field(default_factory=dict)
    #: Tasks already complete in the (resumed) log before any worker ran.
    resumed: int = 0
    #: Scheduler counters: claims, steals, expiries, duplicates,
    #: respawns, workers.
    stats: Dict[str, int] = field(default_factory=dict)


def _task_label(task: TaskKey) -> str:
    return ":".join(str(part) for part in task)


def _worker_main(
    name: str,
    lease_path: str,
    tasks: Sequence[TaskKey],
    execute: ExecuteFn,
    plan: Optional[FaultPlan],
    heartbeat_interval: float,
    lease_ttl: float,
    poll_interval: float,
    max_attempts: int,
) -> None:
    log = LeaseLog(lease_path, worker=name)
    stop_beats = threading.Event()

    def beat() -> None:
        # Never calls inject(): the ambient fault scope is process-wide
        # and a heartbeat firing mid-task would perturb the main
        # thread's deterministic hit counters.
        while not stop_beats.wait(heartbeat_interval):
            try:
                log.heartbeat()
            except Exception:
                return

    beats = threading.Thread(target=beat, name=f"{name}-beat", daemon=True)
    beats.start()
    try:
        while True:
            claim: Optional[Claim] = log.claim_next(
                tasks, lease_ttl, max_attempts
            )
            if claim is None:
                statuses = log.snapshot(tasks, lease_ttl, max_attempts)
                if all(
                    status in ("complete", "failed")
                    for status in statuses.values()
                ):
                    return
                time.sleep(poll_interval)
                continue
            if plan is not None:
                # Fresh hit counters per task, reproducing the wave
                # pool's per-process-per-task counting (it re-pickled
                # the plan into every task).
                plan.reset()
            try:
                with fault_scope(plan, attempt=claim.attempt - 1):
                    if robust_faults.inject("scheduler.hang") == "corrupt":
                        stop_beats.set()
                        while True:  # a livelocked worker: alive, silent
                            time.sleep(60.0)
                    robust_faults.inject("scheduler.task")
                    payload, fingerprint = execute(claim.task)
                log.complete(claim.task, claim.attempt, payload, fingerprint)
            except LeaseConsistencyError:
                raise  # determinism is broken — die loudly
            except Exception as exc:
                log.release(claim.task, claim.attempt, error=repr(exc))
    finally:
        stop_beats.set()


def run_leased(
    tasks: Sequence[TaskKey],
    execute: ExecuteFn,
    lease_path: str,
    workers: int = 2,
    resume: bool = False,
    heartbeat_interval: float = 0.25,
    lease_ttl: float = 5.0,
    poll_interval: float = 0.05,
    max_attempts: int = 3,
    fault_plan: Optional[FaultPlan] = None,
    worker_faults: Optional[Sequence[Optional[Sequence[str]]]] = None,
) -> SchedulerResult:
    """Run ``tasks`` to completion on ``workers`` stealing processes.

    ``tasks`` is the claim order (workers race for the earliest
    claimable task; the flock serialises the race).  ``execute`` runs
    in the worker and must be a pure function of the task key — fork
    start method, so closures over parent state work.  ``resume=True``
    keeps an existing lease log and skips its completed tasks;
    otherwise the log is truncated fresh.

    ``fault_plan`` ships to every worker; ``worker_faults`` adds
    per-worker rule specs by worker index (chaos tests use it to kill
    one worker and hang another while a third stays clean).
    """
    if not tasks:
        return SchedulerResult(payloads={}, failed={}, stats={"workers": 0})
    monitor = LeaseLog(lease_path, worker="parent", fresh=not resume)
    resumed = len(monitor.completed_payloads())
    forgiven = monitor.forgive_failures(tasks) if resume else 0
    watcher = LeaseWatcher(lease_path)
    context = multiprocessing.get_context("fork")
    workers = max(1, workers)

    def plan_for(index: int, clean: bool = False) -> Optional[FaultPlan]:
        if clean:
            return None
        rules = list(fault_plan.rules) if fault_plan is not None else []
        if worker_faults is not None and index < len(worker_faults):
            specs = worker_faults[index]
            if specs:
                rules.extend(FaultPlan.from_specs(list(specs)).rules)
        return FaultPlan(rules) if rules else None

    processes: Dict[str, multiprocessing.Process] = {}
    spawned = 0

    def spawn(index: int, clean: bool = False) -> None:
        nonlocal spawned
        name = f"worker-{index}" if not clean else f"respawn-{index}"
        process = context.Process(
            target=_worker_main,
            name=name,
            args=(
                name,
                lease_path,
                list(tasks),
                execute,
                plan_for(index, clean=clean),
                heartbeat_interval,
                lease_ttl,
                poll_interval,
                max_attempts,
            ),
            daemon=True,
        )
        process.start()
        processes[name] = process
        spawned += 1

    for index in range(workers):
        spawn(index)

    expiries = 0
    steals = 0
    claims = 0
    respawns = 0
    released_leases: Dict[Tuple[TaskKey, int], str] = {}
    beats: Dict[str, float] = {name: time.time() for name in processes}
    reaped: set = set()
    tracing = obs.active()

    def pump_events() -> None:
        nonlocal claims, steals, expiries
        for record in watcher.poll():
            rtype = record.get("type")
            if rtype == "heartbeat":
                worker = record.get("worker", "")
                beats[worker] = max(beats.get(worker, 0.0), time.time())
                continue
            if rtype == "release":
                key = (
                    tuple(record["task"]),
                    int(record.get("attempt", 0)),
                )
                released_leases[key] = record.get("by", "")
                continue
            if rtype == "complete":
                worker = record.get("worker", "")
                beats[worker] = max(beats.get(worker, 0.0), time.time())
                continue
            if rtype != "claim":
                continue
            worker = record.get("worker", "")
            beats[worker] = max(beats.get(worker, 0.0), time.time())
            claims += 1
            task = tuple(record.get("task", ()))
            label = _task_label(task)
            if tracing:
                obs.event(
                    "lease_claimed",
                    task=label,
                    worker=worker,
                    attempt=record.get("attempt"),
                )
            stolen_from = record.get("stolen_from")
            if not stolen_from:
                continue
            steals += 1
            prior = (task, int(record.get("attempt", 1)) - 1)
            if released_leases.get(prior, None) is None:
                # Nobody released the prior lease: the holder went
                # silent and the TTL expired under it.
                expiries += 1
                if tracing:
                    obs.event(
                        "lease_expired",
                        task=label,
                        worker=stolen_from,
                        reason="heartbeat_timeout",
                    )
            if tracing:
                obs.event(
                    "lease_stolen",
                    task=label,
                    stolen_from=stolen_from,
                    worker=worker,
                    attempt=record.get("attempt"),
                )

    def release_dead_leases() -> None:
        nonlocal expiries
        dead = [
            name
            for name, process in processes.items()
            if not process.is_alive() and name not in reaped
        ]
        if not dead:
            return
        for name in dead:
            reaped.add(name)
        for task in tasks:
            held = monitor.holder(task, lease_ttl)
            if held is None:
                continue
            holder, attempt = held
            if holder not in dead:
                continue
            expiries += 1
            monitor.release(
                task,
                attempt,
                error=f"worker {holder!r} exited while holding the lease",
                by="parent",
            )
            if tracing:
                obs.event(
                    "lease_expired",
                    task=_task_label(task),
                    worker=holder,
                    reason="worker_exit",
                )

    try:
        while True:
            pump_events()
            release_dead_leases()
            statuses = monitor.snapshot(tasks, lease_ttl, max_attempts)
            if all(
                status in ("complete", "failed")
                for status in statuses.values()
            ):
                break
            now = time.time()
            effective = [
                name
                for name, process in processes.items()
                if process.is_alive()
                and now - beats.get(name, 0.0)
                < max(lease_ttl, 2 * heartbeat_interval)
            ]
            if not effective and spawned < len(tasks) + workers + 8:
                # Every worker is dead or silent with work remaining:
                # bring up one clean replacement (no chaos plan — a
                # respawned worker models operator recovery).
                respawns += 1
                spawn(respawns, clean=True)
                beats[f"respawn-{respawns}"] = time.time()
                if tracing:
                    obs.event(
                        "worker_respawned",
                        worker=f"respawn-{respawns}",
                        reason="no_live_workers",
                    )
            time.sleep(poll_interval)
        pump_events()
    finally:
        deadline = time.time() + max(lease_ttl, 1.0)
        for process in processes.values():
            process.join(timeout=max(0.0, deadline - time.time()))
        for process in processes.values():
            if process.is_alive():
                process.kill()  # hung workers do not get a say
                process.join(timeout=5.0)

    payloads = monitor.completed_payloads()
    failed: Dict[TaskKey, str] = {}
    attempts_of: Dict[TaskKey, int] = {}
    for task in tasks:
        attempts_of[task] = monitor.attempts_of(task)
        if task in payloads:
            continue
        error = monitor.last_error(task)
        failed[task] = error if error is not None else (
            f"exhausted {attempts_of[task]} attempt(s) without a durable "
            "completion"
        )
    return SchedulerResult(
        payloads=payloads,
        failed=failed,
        attempts=attempts_of,
        resumed=resumed,
        stats={
            "workers": workers,
            "spawned": spawned,
            "claims": claims,
            "steals": steals,
            "expiries": expiries,
            "respawns": respawns,
            "forgiven": forgiven,
        },
    )
