"""repro — Finding Optimum Abstractions in Parametric Dataflow Analysis.

A from-scratch Python reproduction of Zhang, Naik, and Yang (PLDI
2013).  The package provides:

* :mod:`repro.core` — the paper's contribution: the parametric-
  analysis framework, the DNF formula machinery with the ``dropk``
  beam under-approximation, the backward meta-analysis, and the TRACER
  algorithm that finds a *minimum-cost* abstraction proving a query or
  shows that none exists;
* :mod:`repro.typestate` / :mod:`repro.escape` — the two client
  analyses of the paper (Figures 4/10 and 5/11);
* :mod:`repro.lang` / :mod:`repro.dataflow` / :mod:`repro.frontend` —
  the substrate: the analysis language, the disjunctive collecting
  engine with counterexample witnesses, and a mini-Java front end with
  0-CFA and context-sensitive inlining;
* :mod:`repro.bench` — the seven-benchmark suite and the harness
  regenerating every table and figure of the paper's evaluation.

Quick start::

    from repro import (
        Tracer, TracerConfig, TypestateClient, TypestateQuery,
        file_automaton, parse_program,
    )

    program = parse_program('''
        x = new File
        y = x
        x.open()
        y.close()
        observe check1
    ''')
    client = TypestateClient(program, file_automaton(), "File",
                             variables=frozenset({"x", "y"}))
    record = Tracer(client, TracerConfig(k=1)).solve(
        TypestateQuery("check1", frozenset({"closed"})))
    print(record.status, sorted(record.abstraction))
"""

from repro.core import (
    BackwardMetaAnalysis,
    Dnf,
    MapParamSpace,
    MetaResult,
    MinCostSat,
    ParamSpace,
    ParametricAnalysis,
    QueryRecord,
    QueryStatus,
    SubsetParamSpace,
    Theory,
    Tracer,
    TracerClient,
    TracerConfig,
    ViabilityStore,
    backward_trace,
    summarize_records,
)
from repro.core import SearchTranscript, narrate
from repro.escape import EscSchema, EscapeClient, EscapeQuery
from repro.provenance import ProvenanceClient, ProvenanceQuery, PtSchema
from repro.lang import parse_program, pretty_program
from repro.typestate import (
    TypestateClient,
    TypestateQuery,
    file_automaton,
    stress_automaton,
)

__version__ = "1.0.0"

__all__ = [
    "BackwardMetaAnalysis",
    "Dnf",
    "EscSchema",
    "EscapeClient",
    "EscapeQuery",
    "MapParamSpace",
    "MetaResult",
    "MinCostSat",
    "ParamSpace",
    "ParametricAnalysis",
    "ProvenanceClient",
    "ProvenanceQuery",
    "PtSchema",
    "QueryRecord",
    "QueryStatus",
    "SearchTranscript",
    "SubsetParamSpace",
    "Theory",
    "Tracer",
    "TracerClient",
    "TracerConfig",
    "TypestateClient",
    "TypestateQuery",
    "ViabilityStore",
    "__version__",
    "backward_trace",
    "file_automaton",
    "narrate",
    "parse_program",
    "pretty_program",
    "stress_automaton",
    "summarize_records",
]
