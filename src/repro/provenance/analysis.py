"""Transfer semantics of the provenance analysis, as guarded-update
case tables.

Only commands that bind a variable matter:

* ``v = new h`` — ``{h}`` when ``h`` is tracked by the abstraction,
  ``TOP`` otherwise;
* ``v = w`` — copy; ``v = null`` — the empty set;
* heap and global loads — ``TOP`` (field summaries are not modelled;
  the query-relevant precision lives in the locals);
* stores, calls and thread starts leave the state unchanged.

Each command is described once by
:meth:`ProvenanceSemantics.table_for`; the framework derives both the
forward transfer function and the weakest preconditions from the same
table.  A variable binding is one value, but it is *observed* through
two primitive families (``v.top`` and ``h in v``), so the effects
below expose one :class:`~repro.core.semantics.ValueExpr` per observed
location ``("top", v)`` / ``("has", v, h)``.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

from repro.core.formula import Primitive, TRUE, lit, nlit
from repro.core.parametric import ParametricAnalysis, SubsetParamSpace
from repro.core.semantics import (
    IDENTITY,
    Case,
    Const,
    Effect,
    GuardedSemantics,
    Read,
    SemanticsBinding,
)
from repro.lang.ast import (
    Assign,
    AssignNull,
    AtomicCommand,
    Invoke,
    LoadField,
    LoadGlobal,
    New,
    Observe,
    StoreField,
    StoreGlobal,
    ThreadStart,
)
from repro.provenance.domain import PT_TOP, PtSchema, PtState
from repro.provenance.meta import PtHas, PtParam, PtTop, ProvenanceTheory


class ProvenanceBinding(SemanticsBinding):
    """Location <-> primitive binding over a fixed :class:`PtSchema`."""

    def __init__(self, schema: PtSchema):
        self.schema = schema
        self.theory = ProvenanceTheory()

    def location_of(self, prim: Primitive):
        if isinstance(prim, PtTop):
            return ("top", prim.var)
        if isinstance(prim, PtHas):
            return ("has", prim.var, prim.site)
        return None  # PtParam: a parameter primitive

    def location_literal(self, location, value):
        if location[0] == "top":
            prim = PtTop(location[1])
        else:
            prim = PtHas(location[1], location[2])
        return lit(prim) if value else nlit(prim)

    def compile_read(self, location):
        index = self.schema.index(location[1])
        if location[0] == "top":
            return lambda p, d: d.values[index] is PT_TOP
        site = location[2]

        def read_has(p, d):
            value = d.values[index]
            return value is not PT_TOP and site in value

        return read_has

    def compile_write(self, location):
        raise TypeError(
            "provenance bindings are whole values; use the Bind*/CopyVar "
            "effects instead of generic Updates"
        )

    def compile_primitive_test(self, prim: Primitive):
        if isinstance(prim, PtParam):
            site = prim.site
            return lambda p, d: site in p
        return self.compile_read(self.location_of(prim))

    def compile_primitive_test_bound(self, prim: Primitive, p):
        if isinstance(prim, PtParam):
            value = prim.site in p
            return lambda d: value
        location = self.location_of(prim)
        index = self.schema.index(location[1])
        if location[0] == "top":
            return lambda d: d.values[index] is PT_TOP
        site = location[2]

        def test_has(d):
            value = d.values[index]
            return value is not PT_TOP and site in value

        return test_has


class BindSites(Effect):
    """Bind ``lhs`` to a known site set (possibly empty = null)."""

    __slots__ = ("lhs", "sites")

    def __init__(self, lhs: str, sites: Tuple[str, ...]):
        self.lhs = lhs
        self.sites = frozenset(sites)

    def __repr__(self):
        return f"BindSites({self.lhs!r}, {sorted(self.sites)!r})"

    def value_expr_at(self, location, binding):
        if location[1] != self.lhs:
            return None
        if location[0] == "top":
            return Const(False)
        return Const(location[2] in self.sites)

    def compile(self, binding):
        lhs, sites = self.lhs, self.sites
        return lambda p, d: d.set(lhs, sites)

    def param_primitives(self, binding):
        return ()


class BindTop(Effect):
    """Bind ``lhs`` to ``TOP`` (the analysis lost track)."""

    __slots__ = ("lhs",)

    def __init__(self, lhs: str):
        self.lhs = lhs

    def __repr__(self):
        return f"BindTop({self.lhs!r})"

    def value_expr_at(self, location, binding):
        if location[1] != self.lhs:
            return None
        return Const(location[0] == "top")

    def compile(self, binding):
        lhs = self.lhs
        return lambda p, d: d.set(lhs, PT_TOP)

    def param_primitives(self, binding):
        return ()


class CopyVar(Effect):
    """``lhs = rhs``: copy the whole binding."""

    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs: str, rhs: str):
        self.lhs = lhs
        self.rhs = rhs

    def __repr__(self):
        return f"CopyVar({self.lhs!r}, {self.rhs!r})"

    def value_expr_at(self, location, binding):
        if location[1] != self.lhs:
            return None
        if location[0] == "top":
            return Read(("top", self.rhs))
        return Read(("has", self.rhs, location[2]))

    def compile(self, binding):
        lhs, rhs = self.lhs, self.rhs
        return lambda p, d: d.set(lhs, d.get(rhs))

    def param_primitives(self, binding):
        return ()


class ProvenanceSemantics(GuardedSemantics):
    """Case tables of the provenance transfer functions."""

    metrics_name = "provenance"

    def __init__(self, schema: PtSchema):
        super().__init__(ProvenanceBinding(schema))

    def table_for(self, command: AtomicCommand):
        if isinstance(command, New):
            return (
                Case(
                    lit(PtParam(command.site)),
                    BindSites(command.lhs, (command.site,)),
                ),
                Case(nlit(PtParam(command.site)), BindTop(command.lhs)),
            )
        if isinstance(command, Assign):
            return (Case(TRUE, CopyVar(command.lhs, command.rhs)),)
        if isinstance(command, AssignNull):
            return (Case(TRUE, BindSites(command.lhs, ())),)
        if isinstance(command, (LoadField, LoadGlobal)):
            return (Case(TRUE, BindTop(command.lhs)),)
        if isinstance(
            command, (StoreField, StoreGlobal, ThreadStart, Invoke, Observe)
        ):
            return (Case(TRUE, IDENTITY),)
        raise TypeError(f"unknown command: {command!r}")


class ProvenanceAnalysis(ParametricAnalysis):
    """The parametric provenance analysis ``(2^H, |.|, D, [[.]]p)``."""

    def __init__(self, schema: PtSchema, sites: FrozenSet[str]):
        self.schema = schema
        self.sites = frozenset(sites)
        self.param_space = SubsetParamSpace(self.sites)
        self.semantics = ProvenanceSemantics(schema)

    def initial_state(self) -> PtState:
        return self.schema.initial()

    def transfer(self, command: AtomicCommand, p: FrozenSet[str], d: PtState) -> PtState:
        return self.semantics.transfer(command, p, d)
