"""Forward transfer functions of the provenance analysis.

Only commands that bind a variable matter:

* ``v = new h`` — ``{h}`` when ``h`` is tracked by the abstraction,
  ``TOP`` otherwise;
* ``v = w`` — copy; ``v = null`` — the empty set;
* heap and global loads — ``TOP`` (field summaries are not modelled;
  the query-relevant precision lives in the locals);
* stores, calls and thread starts leave the state unchanged.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.core.parametric import ParametricAnalysis, SubsetParamSpace
from repro.lang.ast import (
    Assign,
    AssignNull,
    AtomicCommand,
    Invoke,
    LoadField,
    LoadGlobal,
    New,
    Observe,
    StoreField,
    StoreGlobal,
    ThreadStart,
)
from repro.provenance.domain import PT_TOP, PtSchema, PtState


class ProvenanceAnalysis(ParametricAnalysis):
    """The parametric provenance analysis ``(2^H, |.|, D, [[.]]p)``."""

    def __init__(self, schema: PtSchema, sites: FrozenSet[str]):
        self.schema = schema
        self.sites = frozenset(sites)
        self.param_space = SubsetParamSpace(self.sites)

    def initial_state(self) -> PtState:
        return self.schema.initial()

    def transfer(self, command: AtomicCommand, p: FrozenSet[str], d: PtState) -> PtState:
        if isinstance(command, New):
            if command.site in p:
                return d.set(command.lhs, frozenset([command.site]))
            return d.set(command.lhs, PT_TOP)
        if isinstance(command, Assign):
            return d.set(command.lhs, d.get(command.rhs))
        if isinstance(command, AssignNull):
            return d.set(command.lhs, frozenset())
        if isinstance(command, (LoadField, LoadGlobal)):
            return d.set(command.lhs, PT_TOP)
        if isinstance(
            command, (StoreField, StoreGlobal, ThreadStart, Invoke, Observe)
        ):
            return d
        raise TypeError(f"unknown command: {command!r}")
