"""TRACER client for the provenance analysis.

A query ``(pc, v, allowed)`` asks whether ``v`` at ``Observe(pc)`` can
only denote null or objects allocated at sites in ``allowed``::

    not(q) = v.top | \\/ {h in v | h not in allowed}

Provable exactly when (a) every allocation reaching ``v`` is tracked
by some abstraction and (b) all of those sites lie in ``allowed``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

import itertools

from repro.core.formula import Formula, disj, lit
from repro.core.selfcheck import sample_pairs, sample_subsets
from repro.core.tracer import TracerClient
from repro.dataflow.engines import ForwardResult, engine_for
from repro.lang.ast import Program
from repro.lang.cfg import Cfg, build_cfg
from repro.provenance.analysis import ProvenanceAnalysis
from repro.provenance.domain import PT_TOP, PtSchema
from repro.provenance.kernel import ProvenanceCodec
from repro.provenance.meta import ProvenanceMeta, PtHas, PtParam, PtTop


@dataclass(frozen=True)
class ProvenanceQuery:
    """Prove that at ``Observe(label)`` variable ``var`` denotes only
    objects from ``allowed`` allocation sites (or null)."""

    label: str
    var: str
    allowed: FrozenSet[str]

    def __str__(self) -> str:
        return f"provenance:{self.label}:{self.var}"


class ProvenanceClient(TracerClient):
    """Binds a program and its variable/site universes."""

    def __init__(self, program: Program, schema: PtSchema, sites: FrozenSet[str]):
        self.program = program
        self.engine = engine_for(program)
        self.cfg: Optional[Cfg] = getattr(self.engine, "cfg", None)
        self.schema = schema
        self.analysis = ProvenanceAnalysis(schema, sites)
        self.meta = ProvenanceMeta(self.analysis)

    def fail_condition(self, query: ProvenanceQuery) -> Formula:
        bad_sites = sorted(self.analysis.sites - query.allowed)
        return disj(
            lit(PtTop(query.var)),
            *(lit(PtHas(query.var, h)) for h in bad_sites),
        )

    def cache_key(self):
        """Forward-run cache identity; the base token distinguishes
        client instances (and hence programs)."""
        return ("provenance", TracerClient.cache_key(self))

    def run_forward(self, p: FrozenSet[str]) -> ForwardResult:
        return self.engine.run(
            self.analysis.semantics.bound_step(p),
            self.analysis.initial_state(),
        )

    def _kernel_codec(self):
        """Bitset layout for ``use_engine("compiled")``: per variable,
        a top bit plus one bit per tracked allocation site."""
        return ProvenanceCodec(self.schema, self.analysis.sites)

    def selfcheck_space(self):
        """Primitives and ``(p, d)`` samples for ``repro selfcheck``;
        exhaustive when the site/variable universes are small."""
        sites = sorted(self.analysis.sites)
        variables = self.schema.variables
        prims = [PtParam(site) for site in sites]
        for var in variables:
            prims.append(PtTop(var))
            prims.extend(PtHas(var, site) for site in sites)
        values = [PT_TOP] + sample_subsets(sites, limit=3)
        states = (
            self.schema.state(dict(zip(variables, combo)))
            for combo in itertools.product(values, repeat=len(variables))
        )
        return prims, sample_pairs(sample_subsets(sites), states)

    # counterexamples() is inherited from TracerClient.
