"""TRACER client for the provenance analysis.

A query ``(pc, v, allowed)`` asks whether ``v`` at ``Observe(pc)`` can
only denote null or objects allocated at sites in ``allowed``::

    not(q) = v.top | \\/ {h in v | h not in allowed}

Provable exactly when (a) every allocation reaching ``v`` is tracked
by some abstraction and (b) all of those sites lie in ``allowed``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.core.formula import Formula, disj, lit
from repro.core.tracer import TracerClient
from repro.dataflow.engines import ForwardResult, engine_for
from repro.lang.ast import Program
from repro.lang.cfg import Cfg, build_cfg
from repro.provenance.analysis import ProvenanceAnalysis
from repro.provenance.domain import PtSchema
from repro.provenance.meta import ProvenanceMeta, PtHas, PtTop


@dataclass(frozen=True)
class ProvenanceQuery:
    """Prove that at ``Observe(label)`` variable ``var`` denotes only
    objects from ``allowed`` allocation sites (or null)."""

    label: str
    var: str
    allowed: FrozenSet[str]

    def __str__(self) -> str:
        return f"provenance:{self.label}:{self.var}"


class ProvenanceClient(TracerClient):
    """Binds a program and its variable/site universes."""

    def __init__(self, program: Program, schema: PtSchema, sites: FrozenSet[str]):
        self.program = program
        self.engine = engine_for(program)
        self.cfg: Optional[Cfg] = getattr(self.engine, "cfg", None)
        self.schema = schema
        self.analysis = ProvenanceAnalysis(schema, sites)
        self.meta = ProvenanceMeta(self.analysis)

    def fail_condition(self, query: ProvenanceQuery) -> Formula:
        bad_sites = sorted(self.analysis.sites - query.allowed)
        return disj(
            lit(PtTop(query.var)),
            *(lit(PtHas(query.var, h)) for h in bad_sites),
        )

    def cache_key(self):
        """Forward-run cache identity; the base token distinguishes
        client instances (and hence programs)."""
        return ("provenance", TracerClient.cache_key(self))

    def run_forward(self, p: FrozenSet[str]) -> ForwardResult:
        return self.engine.run(
            self.analysis.semantics.bound_step(p),
            self.analysis.initial_state(),
        )

    # counterexamples() is inherited from TracerClient.
