"""Bitset codec for the provenance domain.

Layout, per schema variable: one ``("top", v)`` bit plus one
``("has", v, h)`` bit per *tracked* site (the analysis's site
universe).  A canonical state never mixes the top bit with has bits —
``BindTop`` clears them — and site sets stay inside the universe:
``New`` at an untracked site folds to ``BindTop`` under every ``p``
(its ``PtParam`` guard can never hold), so those ``BindSites`` rows die
before effect lowering.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

from repro.core.semantics import Updates
from repro.dataflow.bitset import (
    BitsetLayout,
    KernelFallback,
    StateCodec,
    bool_group,
)
from repro.provenance.analysis import BindSites, BindTop, CopyVar
from repro.provenance.domain import PT_TOP, PtSchema, PtState

__all__ = ["ProvenanceCodec"]


class ProvenanceCodec(StateCodec):
    """Encodes ``PtState`` over a fixed schema + tracked-site universe.

    Decoded states are built on the codec's own schema object
    (``PtState`` equality requires schema identity) and use the
    ``PT_TOP`` singleton, so they are indistinguishable from
    interpreter-produced states.
    """

    __slots__ = ("schema", "_tracked", "_per_var")

    def __init__(self, schema: PtSchema, sites: Iterable[str]):
        tracked = tuple(sorted(set(sites)))
        specs = []
        for v in schema.variables:
            specs.append(bool_group(("top", v)))
            specs.extend(bool_group(("has", v, h)) for h in tracked)
        super().__init__(BitsetLayout(specs))
        self.schema = schema
        self._tracked = frozenset(tracked)
        layout = self.layout
        self._per_var = tuple(
            (
                layout.group(("top", v)).mask,
                tuple((h, layout.group(("has", v, h)).mask) for h in tracked),
            )
            for v in schema.variables
        )

    def encode_state(self, state: PtState) -> int:
        bits = 0
        for (top_bit, has_bits), value in zip(self._per_var, state.values):
            if value is PT_TOP:
                bits |= top_bit
            else:
                if value and not value <= self._tracked:
                    raise ValueError(
                        f"site set {sorted(value)} outside the tracked "
                        f"universe {sorted(self._tracked)}"
                    )
                for h, bit in has_bits:
                    if h in value:
                        bits |= bit
        return bits

    def decode_state(self, bits: int) -> PtState:
        values = []
        for top_bit, has_bits in self._per_var:
            if bits & top_bit:
                values.append(PT_TOP)
            else:
                values.append(
                    frozenset(h for h, bit in has_bits if bits & bit)
                )
        return PtState(self.schema, tuple(values))

    def missing_read(self, location):
        if location[0] == "has":
            # Encodable states keep site sets inside the tracked
            # universe, so an untracked has-bit always reads False.
            return False
        raise KernelFallback(f"read of location outside layout: {location!r}")

    def narrow_key(self, p: FrozenSet[str]):
        """Under ``p`` every reachable site set stays inside
        ``p & tracked``: surviving ``New`` rows bind only sites of
        ``p``, ``AssignNull`` binds the empty set, and ``CopyVar`` only
        copies — so the untracked has-bits are dead and the layout
        shrinks to the footprint."""
        key = frozenset(p) & self._tracked
        return None if key == self._tracked else key

    def narrow(self, p: FrozenSet[str]) -> "ProvenanceCodec":
        return ProvenanceCodec(self.schema, frozenset(p) & self._tracked)

    def safe_effect(self, effect, binding, p: FrozenSet[str]) -> bool:
        if isinstance(effect, BindTop):
            return ("top", effect.lhs) in self.layout
        if isinstance(effect, CopyVar):
            return ("top", effect.lhs) in self.layout
        if isinstance(effect, BindSites):
            return (
                ("top", effect.lhs) in self.layout
                and effect.sites <= self._tracked
            )
        if isinstance(effect, Updates):
            return all(location in self.layout for location, _ in effect.writes)
        return False
