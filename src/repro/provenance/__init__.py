"""A third client analysis: parametric allocation-site provenance.

This client is *not* in the paper — it exists to demonstrate that the
generic framework (Sections 3-5) really is generic: a new parametric
dataflow analysis plugs in by supplying a domain, forward transfer
functions, a primitive vocabulary with its theory, and weakest
preconditions on primitives; TRACER, the meta-analysis engine, the
viability store, and the optimality guarantees come for free.

The analysis tracks, flow-sensitively, the set of allocation sites
each variable may point to.  The abstraction ``p`` selects which sites
are tracked *precisely*; a variable assigned from an untracked site
(or from the heap) degrades to ``TOP``.  A query
``(pc, v, allowed_sites)`` asks whether ``v`` can only denote objects
allocated at ``allowed_sites`` — the guarantee a compiler needs to
devirtualise a call through ``v``.
"""

from repro.provenance.domain import PT_TOP, PtSchema, PtState
from repro.provenance.analysis import ProvenanceAnalysis
from repro.provenance.meta import (
    ProvenanceMeta,
    ProvenanceTheory,
    PtHas,
    PtParam,
    PtTop,
)
from repro.provenance.client import ProvenanceClient, ProvenanceQuery

__all__ = [
    "PT_TOP",
    "ProvenanceAnalysis",
    "ProvenanceClient",
    "ProvenanceMeta",
    "ProvenanceQuery",
    "ProvenanceTheory",
    "PtHas",
    "PtParam",
    "PtSchema",
    "PtState",
    "PtTop",
]
