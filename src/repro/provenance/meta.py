"""Backward meta-analysis for the provenance analysis.

Primitive formulas over pairs ``(p, d)``:

* ``PtParam(h)`` — site ``h`` is tracked (``h in p``);
* ``PtTop(v)``   — ``d(v) = TOP``;
* ``PtHas(v, h)`` — ``d(v) != TOP`` and ``h in d(v)``.

``PtTop`` and ``PtHas`` on the same variable are mutually exclusive,
which the theory exploits exactly as the type-state theory does for
``err`` vs ``var``/``type``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.formula import Formula, Literal, Primitive
from repro.core.meta import BackwardMetaAnalysis
from repro.core.viability import ParamTheory
from repro.lang.ast import AtomicCommand
from repro.provenance.domain import PT_TOP, PtState


@dataclass(frozen=True)
class PtParam(Primitive):
    """``h in p``."""

    site: str

    def __str__(self) -> str:
        return f"tracked({self.site})"


@dataclass(frozen=True)
class PtTop(Primitive):
    """``d(v) = TOP``."""

    var: str

    def __str__(self) -> str:
        return f"{self.var}.top"


@dataclass(frozen=True)
class PtHas(Primitive):
    """``d(v) != TOP`` and ``h in d(v)``."""

    var: str
    site: str

    def __str__(self) -> str:
        return f"{self.site} in {self.var}"


class ProvenanceTheory(ParamTheory):
    """Semantics and cube normalisation of the provenance primitives."""

    def holds(self, prim: Primitive, p, d: PtState) -> bool:
        if isinstance(prim, PtParam):
            return prim.site in p
        if isinstance(prim, PtTop):
            return d.get(prim.var) is PT_TOP
        if isinstance(prim, PtHas):
            value = d.get(prim.var)
            return value is not PT_TOP and prim.site in value
        raise TypeError(f"not a provenance primitive: {prim!r}")

    def is_param(self, prim: Primitive) -> bool:
        return isinstance(prim, PtParam)

    def param_var(self, prim: Primitive) -> Tuple[str, bool]:
        assert isinstance(prim, PtParam)
        return (prim.site, True)

    def lit_entails(self, a: Literal, b: Literal) -> bool:
        if a == b:
            return True
        if a.positive and isinstance(a.prim, PtHas):
            if (
                not b.positive
                and isinstance(b.prim, PtTop)
                and b.prim.var == a.prim.var
            ):
                return True
        if a.positive and isinstance(a.prim, PtTop):
            if (
                not b.positive
                and isinstance(b.prim, PtHas)
                and b.prim.var == a.prim.var
            ):
                return True
        return False

    def cube_entails_literal(self, stronger, b: Literal) -> bool:
        if b in stronger:
            return True
        if b.positive:
            return False
        if isinstance(b.prim, PtHas):
            return Literal(PtTop(b.prim.var), True) in stronger
        if isinstance(b.prim, PtTop):
            return any(
                a.positive
                and isinstance(a.prim, PtHas)
                and a.prim.var == b.prim.var
                for a in stronger
            )
        return False

    def normalize_cube(self, literals) -> Optional[frozenset]:
        for l in literals:
            if l.negate() in literals:
                return None
        tops = {
            l.prim.var
            for l in literals
            if l.positive and isinstance(l.prim, PtTop)
        }
        out = set()
        for l in literals:
            if isinstance(l.prim, PtHas) and l.prim.var in tops:
                if l.positive:
                    return None  # top and has are exclusive
                continue  # !has is implied by top
            if (
                not l.positive
                and isinstance(l.prim, PtTop)
                and any(
                    l2.positive
                    and isinstance(l2.prim, PtHas)
                    and l2.prim.var == l.prim.var
                    for l2 in literals
                )
            ):
                continue  # !top implied by a positive has
            out.add(l)
        return frozenset(out)


class ProvenanceMeta(BackwardMetaAnalysis):
    """Weakest preconditions on provenance primitives, derived from
    the forward case tables (requirement (2) by construction)."""

    metrics_name = "provenance"

    def __init__(self, analysis):
        self.analysis = analysis
        self.theory = analysis.semantics.binding.theory

    def wp_primitive(self, command: AtomicCommand, prim: Primitive) -> Formula:
        return self.analysis.semantics.wp_primitive(command, prim)
