"""Abstract states of the provenance analysis.

``d : V -> 2^H + {TOP}``: each variable is bound either to the exact
set of (tracked) allocation sites it may originate from — the empty
set meaning definitely-null — or to ``TOP``, meaning the analysis lost
track (untracked allocation, heap or global load).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Tuple, Union


class _PtTopValue:
    """Singleton sentinel for the unknown binding."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "TOP"


PT_TOP = _PtTopValue()

PtValue = Union[FrozenSet[str], _PtTopValue]


class PtSchema:
    """The ordered variable universe of one program."""

    __slots__ = ("variables", "_index")

    def __init__(self, variables: Iterable[str]):
        self.variables: Tuple[str, ...] = tuple(sorted(set(variables)))
        self._index: Dict[str, int] = {
            name: i for i, name in enumerate(self.variables)
        }

    def index(self, name: str) -> int:
        return self._index[name]

    def initial(self) -> "PtState":
        """Everything starts definitely-null."""
        return PtState(self, (frozenset(),) * len(self.variables))

    def state(self, bindings: Mapping[str, PtValue]) -> "PtState":
        values = [frozenset()] * len(self.variables)
        for name, value in bindings.items():
            values[self.index(name)] = value
        return PtState(self, tuple(values))


class PtState:
    """An immutable provenance state over a fixed schema."""

    __slots__ = ("schema", "values", "_hash")

    def __init__(self, schema: PtSchema, values: Tuple[PtValue, ...]):
        self.schema = schema
        self.values = values
        self._hash = hash(
            tuple(v if isinstance(v, frozenset) else PT_TOP for v in values)
        )

    def get(self, name: str) -> PtValue:
        return self.values[self.schema.index(name)]

    def set(self, name: str, value: PtValue) -> "PtState":
        index = self.schema.index(name)
        if self.values[index] == value or (
            self.values[index] is PT_TOP and value is PT_TOP
        ):
            return self
        values = list(self.values)
        values[index] = value
        return PtState(self.schema, tuple(values))

    def __eq__(self, other) -> bool:
        if not isinstance(other, PtState) or self.schema is not other.schema:
            return False
        for a, b in zip(self.values, other.values):
            if (a is PT_TOP) != (b is PT_TOP):
                return False
            if a is not PT_TOP and a != b:
                return False
        return True

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        parts = []
        for name, value in zip(self.schema.variables, self.values):
            if value is PT_TOP:
                parts.append(f"{name}->TOP")
            elif value:
                parts.append(f"{name}->{{{', '.join(sorted(value))}}}")
        return "[" + ", ".join(parts) + "]"
