"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``solve-typestate FILE`` — resolve a type-state query on a program
  written in the text syntax of :mod:`repro.lang.parser`;
* ``solve-escape FILE`` — resolve a thread-escape (object locality)
  query on such a program;
* ``eval`` — run the paper's full evaluation (Tables 1-4, Figures
  12-14) on the synthetic benchmark suite;
* ``certify FILE`` — independently re-validate verdict certificates
  emitted by ``--certify-out`` (see ``docs/ROBUSTNESS.md``);
* ``selfcheck ANALYSIS FILE`` — machine-check a client analysis's
  transfer/wp contracts on a program (``docs/WRITING_A_CLIENT.md``);
* ``info NAME`` — print one benchmark's Table 1 row and query counts;
* ``trace validate|summarize|transcript FILE`` — work with recorded
  JSONL traces (see ``--trace-out`` and ``docs/OBSERVABILITY.md``).

Variable/site/field universes are inferred from the program text, so a
minimal invocation is just::

    python -m repro solve-typestate prog.rp --query check1 --allowed closed
    python -m repro solve-escape prog.rp --query pc --var u

Every solver accepts ``--trace-out FILE`` (record a structured JSONL
trace of the search) and ``--progress`` (live per-iteration feed on
stderr); ``eval`` accepts the same and merges worker traces
deterministically under ``--jobs``.

Robustness flags (see ``docs/ROBUSTNESS.md``): solvers take
``--max-seconds`` / ``--max-steps`` (cooperative budgets resolving
overruns as UNRESOLVED), ``--lenient`` (contain client errors),
``--inject`` (deterministic fault injection), ``--journal`` /
``--resume-journal`` (crash-recoverable CEGAR journal), and
``--certify-out`` (emit independently checkable verdict certificates);
``eval`` adds ``--retries`` / ``--unit-timeout`` (crash-surviving
worker pool), ``--checkpoint`` / ``--resume`` (JSONL checkpoint of
completed units), and ``--certify-out``.

Exit codes are meaningful so scripts can branch on the verdict:

* 0 — proven (solvers) / evaluation fully resolved;
* 10 — IMPOSSIBLE: no abstraction in the family proves the query;
* 20 — EXHAUSTED: budgets/errors stopped the search short of a verdict;
* 30 — ``eval`` finished but some work units failed permanently;
* 1 — operational failure (``certify``/``selfcheck`` found violations,
  invalid trace, bad arguments).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.narrate import narrate, transcript_from_events
from repro.core.stats import QueryStatus
from repro.core.tracer import ForwardRunCache, Tracer, TracerConfig
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs
from repro.obs.events import SCHEMA_VERSION
from repro.obs.sinks import JsonlSink, MultiSink, Sink, TtySink
from repro.obs.summarize import (
    load_trace,
    render_summary,
    summarize_trace,
    validate_trace,
)
from repro.escape.client import EscapeClient, EscapeQuery
from repro.escape.domain import EscSchema
from repro.lang.parser import parse_program
from repro.lang.universe import collect_universe
from repro.provenance.client import ProvenanceClient, ProvenanceQuery
from repro.provenance.domain import PtSchema
from repro.typestate.automaton import file_automaton, stress_automaton
from repro.typestate.client import TypestateClient, TypestateQuery

#: Verdict exit codes (documented above; tested in tests/test_cli.py).
EXIT_OK = 0
EXIT_IMPOSSIBLE = 10
EXIT_EXHAUSTED = 20
EXIT_FAILED_UNITS = 30


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--k", type=_beam, default=5, metavar="K",
                        help="beam width of the meta-analysis; 'none' disables it")
    parser.add_argument("--max-iterations", type=int, default=60)
    parser.add_argument("--narrate", action="store_true",
                        help="print the full Figure-1 style transcript")
    parser.add_argument(
        "--engine", choices=("interpreted", "compiled"), default="interpreted",
        help="forward-phase engine: 'compiled' runs the bitset kernel "
             "(bit-identical verdicts, faster); default interpreted",
    )
    _add_robust(parser)
    _add_journal(parser)
    _add_obs(parser)


def _add_robust(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--max-seconds", type=float, default=None, metavar="S",
        help="per-query wall-clock budget; overruns resolve as UNRESOLVED",
    )
    parser.add_argument(
        "--max-steps", type=int, default=None, metavar="N",
        help="per-query solver step budget (worklist iterations + backward "
             "commands); overruns resolve as UNRESOLVED",
    )
    parser.add_argument(
        "--lenient", action="store_true",
        help="contain unexpected client errors to the failing query "
             "instead of crashing the solve",
    )
    parser.add_argument(
        "--inject", action="append", default=[], metavar="SITE:ACTION[:K=V,..]",
        help="deterministic fault injection for robustness testing, e.g. "
             "'backward:raise:error=explosion' or 'forward_run:delay:delay=0.1' "
             "(repeatable; see docs/ROBUSTNESS.md)",
    )


def _add_journal(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--journal", metavar="FILE",
        help="append a crash-recoverable search journal to FILE "
             "(one JSONL round record per CEGAR iteration)",
    )
    parser.add_argument(
        "--resume-journal", metavar="FILE",
        help="replay FILE's recorded rounds before searching live, then "
             "keep journaling to it (resuming a killed solve)",
    )
    parser.add_argument(
        "--certify-out", metavar="FILE",
        help="write an independently checkable verdict certificate per "
             "resolved query to FILE (validate with 'repro certify')",
    )


def _add_obs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", metavar="FILE",
        help="record a structured JSONL trace of the search to FILE",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print live per-iteration progress to stderr",
    )


def _build_sink(args) -> Optional[Sink]:
    """Combine the sinks requested on the command line (or ``None``)."""
    sinks: List[Sink] = []
    if getattr(args, "trace_out", None):
        sinks.append(JsonlSink(args.trace_out))
    if getattr(args, "progress", False):
        sinks.append(TtySink(sys.stderr))
    if not sinks:
        return None
    return sinks[0] if len(sinks) == 1 else MultiSink(sinks)


def _beam(text: str) -> Optional[int]:
    if text.lower() in ("none", "all", "off"):
        return None
    return int(text)


def _config(args) -> TracerConfig:
    return TracerConfig(
        k=args.k,
        max_iterations=args.max_iterations,
        max_seconds=getattr(args, "max_seconds", None),
        max_steps=getattr(args, "max_steps", None),
        strict=not getattr(args, "lenient", False),
        engine=getattr(args, "engine", "interpreted"),
    )


def _fault_plan(args):
    """Build the ``--inject`` fault plan, or ``None``."""
    specs = getattr(args, "inject", None) or []
    if not specs:
        return None
    from repro.robust.faults import FaultPlan

    try:
        return FaultPlan.from_specs(specs)
    except ValueError as error:
        _die(str(error))


def _report(client, query, args, stamp: Optional[dict] = None) -> int:
    from repro.robust.faults import fault_scope

    with fault_scope(_fault_plan(args)):
        return _report_inner(client, query, args, stamp)


def _status_code(status: QueryStatus) -> int:
    if status is QueryStatus.IMPOSSIBLE:
        return EXIT_IMPOSSIBLE
    if status is QueryStatus.EXHAUSTED:
        return EXIT_EXHAUSTED
    return EXIT_OK


def _open_journal(args):
    """Build the ``--journal`` / ``--resume-journal`` journal, or
    ``None`` when neither was requested."""
    journal_path = getattr(args, "journal", None)
    resume_path = getattr(args, "resume_journal", None)
    if journal_path and resume_path:
        _die("pass either --journal or --resume-journal, not both")
    if not journal_path and not resume_path:
        return None
    from repro.robust.journal import SearchJournal

    return SearchJournal(resume_path or journal_path, resume=bool(resume_path))


def _report_inner(client, query, args, stamp: Optional[dict] = None) -> int:
    sink = _build_sink(args)
    journal = _open_journal(args)
    certify_out = getattr(args, "certify_out", None)
    if args.narrate and (journal is not None or certify_out):
        _die("--narrate cannot be combined with --journal/--resume-journal/"
             "--certify-out (journaled runs use the driver, not the narrator)")
    if args.narrate:
        # narrate installs its own detail-tracing context and forwards
        # the event stream to the extra sink, so --trace-out traces
        # carry the full per-iteration detail payloads.
        transcript = narrate(client, query, _config(args), sink=sink)
        print(transcript.render())
        status = transcript.status
        abstraction = transcript.abstraction
        iterations = len(transcript.iterations)
    else:
        store = None
        if certify_out:
            from repro.robust.certify import CertificateStore

            store = CertificateStore()
        try:
            record = _solve_traced(
                client, query, args, sink, journal=journal, certificates=store
            )
        finally:
            if journal is not None:
                journal.close()
        if store is not None:
            from repro.robust.certify import write_certificates

            if stamp is not None:
                store.stamp(stamp)
            write_certificates(store.certificates, certify_out)
            print(f"wrote {len(store.certificates)} certificate(s) "
                  f"to {certify_out}")
        status = record.status
        abstraction = record.abstraction
        iterations = record.iterations
        if status is QueryStatus.PROVEN:
            shown = "{" + ", ".join(sorted(abstraction)) + "}"
            print(f"PROVEN with cheapest abstraction {shown} "
                  f"({iterations} iterations)")
        elif status is QueryStatus.IMPOSSIBLE:
            print(f"IMPOSSIBLE: no abstraction in the family proves the "
                  f"query ({iterations} iterations)")
        else:
            print(f"UNRESOLVED after {iterations} iterations")
    return _status_code(status)


def _solve_traced(client, query, args, sink: Optional[Sink],
                  journal=None, certificates=None):
    config = _config(args)
    if sink is None:
        return Tracer(
            client, config, journal=journal, certificates=certificates
        ).solve(query)
    # Own the forward-run cache so it outlives the solve: the metrics
    # registry holds weak references, and a driver-local cache would be
    # collected before the closing snapshot below.
    cache = (
        ForwardRunCache(config.forward_cache_size)
        if config.forward_cache_size
        else None
    )
    with obs.tracing(sink, detail=bool(args.trace_out)):
        record = Tracer(
            client, config, forward_cache=cache,
            journal=journal, certificates=certificates,
        ).solve(query)
        # Close the trace with one metric record per registered cache
        # (the client's caches registered on construction, before this
        # function ran, so read the ambient registry — not a scoped one).
        for name, counters in sorted(
            obs_metrics.current_registry().snapshot().items()
        ):
            obs.metric(name, counters.hits, counters.misses)
    return record


def _parse_program_file(path: str):
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as error:
        _die(str(error))
    try:
        program = parse_program(text)
    except ValueError as error:
        _die(f"{path}: {error}")
    return program, collect_universe(program)


def _typestate_client(path: str, automaton_name: str, site: Optional[str]):
    """Build the type-state client of one program file.  Shared by
    ``solve-typestate``, ``selfcheck``, and the ``certify`` rebuild, so
    a certificate's stamp reconstructs the exact emitting client."""
    program, universe = _parse_program_file(path)
    if automaton_name == "file":
        automaton = file_automaton()
    else:
        if not universe.methods:
            _die("stress automaton needs at least one method call in the program")
        automaton = stress_automaton(sorted(universe.methods))
    resolved = site or (sorted(universe.sites)[0] if universe.sites else None)
    if resolved is None:
        _die("the program allocates nothing; pass --site explicitly")
    client = TypestateClient(program, automaton, resolved, universe.variables)
    return client, universe, automaton, resolved


def _escape_client(path: str):
    program, universe = _parse_program_file(path)
    schema = EscSchema(sorted(universe.variables), sorted(universe.fields))
    return EscapeClient(program, schema, universe.sites), universe


def _provenance_client(path: str):
    program, universe = _parse_program_file(path)
    client = ProvenanceClient(
        program, PtSchema(universe.variables), universe.sites
    )
    return client, universe


def _require_label(universe, label: str) -> None:
    if label not in universe.observe_labels:
        _die(f"no 'observe {label}' in the program "
             f"(labels: {sorted(universe.observe_labels)})")


def _cmd_solve_typestate(args) -> int:
    client, universe, automaton, site = _typestate_client(
        args.file, args.automaton, args.site
    )
    _require_label(universe, args.query)
    allowed = frozenset(args.allowed.split(","))
    unknown = allowed - automaton.states
    if unknown:
        _die(f"unknown type-states {sorted(unknown)}; "
             f"automaton has {sorted(automaton.states)}")
    print(f"tracking site {site} with the {automaton.name} automaton; "
          f"{len(universe.variables)} variables (2^{len(universe.variables)} abstractions)")
    stamp = {
        "kind": "typestate",
        "file": args.file,
        "query": args.query,
        "allowed": sorted(allowed),
        "automaton": args.automaton,
        "site": site,
    }
    return _report(client, TypestateQuery(args.query, allowed), args, stamp)


def _cmd_solve_escape(args) -> int:
    client, universe = _escape_client(args.file)
    _require_label(universe, args.query)
    if args.var not in universe.variables:
        _die(f"unknown variable {args.var!r} "
             f"(variables: {sorted(universe.variables)})")
    print(f"{len(universe.sites)} allocation sites "
          f"(2^{len(universe.sites)} abstractions)")
    stamp = {
        "kind": "escape",
        "file": args.file,
        "query": args.query,
        "var": args.var,
    }
    return _report(client, EscapeQuery(args.query, args.var), args, stamp)


def _cmd_solve_provenance(args) -> int:
    client, universe = _provenance_client(args.file)
    _require_label(universe, args.query)
    if args.var not in universe.variables:
        _die(f"unknown variable {args.var!r} "
             f"(variables: {sorted(universe.variables)})")
    if args.allowed:
        allowed = frozenset(args.allowed.split(","))
        unknown = allowed - universe.sites
        if unknown:
            _die(f"unknown sites {sorted(unknown)} "
                 f"(sites: {sorted(universe.sites)})")
    else:
        allowed = universe.sites
    print(f"{len(universe.sites)} allocation sites "
          f"(2^{len(universe.sites)} abstractions); "
          f"allowed: {sorted(allowed)}")
    stamp = {
        "kind": "provenance",
        "file": args.file,
        "query": args.query,
        "var": args.var,
        "allowed": sorted(allowed),
    }
    return _report(
        client, ProvenanceQuery(args.query, args.var, allowed), args, stamp
    )


def _cmd_eval(args) -> int:
    from repro.bench.parallel import RunOptions
    from repro.bench.report import SMALLEST, full_report
    from repro.bench.suite import BENCHMARK_NAMES
    from repro.robust.faults import fault_scope
    from repro.robust.pool import RetryPolicy

    names = SMALLEST if args.quick else BENCHMARK_NAMES
    if args.resume and not args.checkpoint:
        _die("--resume needs --checkpoint FILE to resume from")
    plan = _fault_plan(args)
    options = RunOptions(
        retry=RetryPolicy(
            max_attempts=args.retries, unit_timeout=args.unit_timeout
        ),
        checkpoint_path=args.checkpoint,
        resume=args.resume,
        fault_plan=plan,
        certify=bool(args.certify_out),
    )

    config = TracerConfig(
        k=args.k, max_iterations=30, engine=getattr(args, "engine", "interpreted")
    )

    def run():
        # With worker processes the plan ships inside ``options``; on
        # the serial path it installs ambiently around the whole run.
        with fault_scope(plan if args.jobs <= 1 else None):
            return full_report(
                names=names, k=args.k, jobs=args.jobs, options=options,
                config=config,
            )

    sink = _build_sink(args)
    if sink is None:
        results = run()
    else:
        # One ambient context around the whole evaluation: the serial
        # harness emits into it directly; the parallel harness collects
        # worker streams and replays them here in work-unit order.
        with obs.tracing(sink):
            results = run()
    if args.json:
        from repro.bench.export import export_json

        export_json(results, args.json)
        print(f"wrote {args.json}")
    if args.certify_out:
        from repro.robust.certify import write_certificates

        certificates = [
            cert
            for per_analysis in results.values()
            for result in per_analysis.values()
            for cert in result.certificates
        ]
        write_certificates(certificates, args.certify_out)
        print(f"wrote {len(certificates)} certificate(s) to {args.certify_out}")
    failed = [
        unit
        for per_analysis in results.values()
        for result in per_analysis.values()
        for unit in result.failed_units
    ]
    return EXIT_FAILED_UNITS if failed else EXIT_OK


def _cmd_certify(args) -> int:
    from repro.robust.certify import check_certificate, load_certificates

    try:
        certificates = load_certificates(args.file)
    except (OSError, ValueError) as error:
        _die(str(error))
    if not certificates:
        print("no certificates to check")
        return 0
    memo: dict = {}
    failures = 0
    for cert in certificates:
        label = f"{cert.get('verdict', '?'):<10} {cert.get('query', '?')}"
        try:
            client, query = _certified_client(cert, memo)
        except (KeyError, IndexError, TypeError, ValueError) as error:
            print(f"FAIL {label}: cannot rebuild the emitting client "
                  f"from the stamp ({error!r})")
            failures += 1
            continue
        report = check_certificate(client, query, cert)
        if report.ok:
            print(f"OK   {label}")
        else:
            failures += 1
            print(f"FAIL {label}")
            for problem in report.problems:
                print(f"     - {problem}")
    print(f"{len(certificates) - failures}/{len(certificates)} "
          f"certificates check out")
    return 0 if failures == 0 else 1


def _certified_client(cert: dict, memo: dict):
    """Rebuild the ``(client, query)`` a certificate was emitted
    against, from its ``client`` stamp alone.  ``memo`` caches prepared
    benchmarks and parsed programs across certificates of one file."""
    stamp = cert.get("client")
    if not isinstance(stamp, dict):
        raise KeyError("certificate carries no client stamp")
    kind = stamp.get("kind")
    if kind == "bench":
        from repro.bench.harness import analysis_setups, prepare

        name = stamp["benchmark"]
        bench = memo.get(("bench", name))
        if bench is None:
            bench = memo[("bench", name)] = prepare(name)
        key = ("setups", name, stamp["analysis"])
        setups = memo.get(key)
        if setups is None:
            setups = memo[key] = analysis_setups(bench, stamp["analysis"])
        client, queries = setups[stamp["index"]]
        query = queries[stamp["query_index"]]
    elif kind == "typestate":
        key = ("typestate", stamp["file"], stamp["automaton"], stamp["site"])
        client = memo.get(key)
        if client is None:
            client, _universe, _automaton, _site = _typestate_client(
                stamp["file"], stamp["automaton"], stamp["site"]
            )
            memo[key] = client
        query = TypestateQuery(stamp["query"], frozenset(stamp["allowed"]))
    elif kind == "escape":
        key = ("escape", stamp["file"])
        client = memo.get(key)
        if client is None:
            client, _universe = _escape_client(stamp["file"])
            memo[key] = client
        query = EscapeQuery(stamp["query"], stamp["var"])
    elif kind == "provenance":
        key = ("provenance", stamp["file"])
        client = memo.get(key)
        if client is None:
            client, _universe = _provenance_client(stamp["file"])
            memo[key] = client
        query = ProvenanceQuery(
            stamp["query"], stamp["var"], frozenset(stamp["allowed"])
        )
    else:
        raise ValueError(f"unknown client stamp kind {kind!r}")
    if str(query) != cert.get("query"):
        raise ValueError(
            f"stamp rebuilds query {str(query)!r} but the certificate "
            f"is about {cert.get('query')!r}"
        )
    return client, query


def _cmd_selfcheck(args) -> int:
    from repro.core.selfcheck import check_transfer_total, check_wp
    from repro.lang.ast import atoms_of

    if args.analysis == "typestate":
        client, _universe, _automaton, _site = _typestate_client(
            args.file, args.automaton, args.site
        )
    elif args.analysis == "escape":
        client, _universe = _escape_client(args.file)
    else:
        client, _universe = _provenance_client(args.file)
    prims, pairs = client.selfcheck_space()
    pairs = list(pairs)
    commands = list(atoms_of(client.program))
    print(f"selfcheck: {len(commands)} commands x {len(prims)} primitives "
          f"x {len(pairs)} (p, d) samples")
    violations = check_transfer_total(
        client.analysis, commands, pairs, max_violations=args.max_violations
    )
    violations += check_wp(
        client.analysis, client.meta, commands, prims, pairs,
        max_violations=args.max_violations,
    )
    if violations:
        for violation in violations:
            print(f"  {violation}")
        print(f"FAILED: {len(violations)} violation(s)")
        return 1
    print("OK: transfer totality and wp-homomorphism hold on every sample")
    return 0


def _cmd_trace_validate(args) -> int:
    records = _load_trace_or_die(args.file)
    errors = validate_trace(records)
    if errors:
        for error in errors:
            print(f"invalid: {error}", file=sys.stderr)
        return 1
    print(f"OK: {len(records)} records, schema version {SCHEMA_VERSION}")
    return 0


def _cmd_trace_summarize(args) -> int:
    records = _load_trace_or_die(args.file)
    errors = validate_trace(records)
    if errors:
        for error in errors:
            print(f"invalid: {error}", file=sys.stderr)
        return 1
    print(render_summary(summarize_trace(records)))
    return 0


def _cmd_trace_transcript(args) -> int:
    records = _load_trace_or_die(args.file)
    try:
        transcript = transcript_from_events(records, query=args.query)
    except ValueError as error:
        _die(str(error))
    print(transcript.render())
    return 0


def _load_trace_or_die(path: str) -> List[dict]:
    try:
        return load_trace(path)
    except (OSError, ValueError) as error:
        _die(str(error))


def _cmd_info(args) -> int:
    from repro.bench.harness import escape_setup, prepare, typestate_setup
    from repro.bench.tables import render_table1

    bench = prepare(args.name)
    print(render_table1([bench.metrics]))
    _client, escape_queries = escape_setup(bench)
    typestate_queries = sum(len(qs) for _c, qs in typestate_setup(bench))
    print(f"\nqueries: {typestate_queries} type-state, {len(escape_queries)} thread-escape")
    print(f"recursion cuts during inlining: {bench.inlined.recursion_cuts}")
    return 0


def _die(message: str) -> None:
    raise SystemExit(f"error: {message}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    typestate = commands.add_parser(
        "solve-typestate", help="resolve a type-state query on a program file"
    )
    typestate.add_argument("file")
    typestate.add_argument("--query", required=True, help="observe label to check")
    typestate.add_argument(
        "--allowed", default="closed",
        help="comma-separated type-states allowed at the query (default: closed)",
    )
    typestate.add_argument(
        "--automaton", choices=("file", "stress"), default="file"
    )
    typestate.add_argument("--site", help="tracked allocation site (default: first)")
    _add_common(typestate)
    typestate.set_defaults(func=_cmd_solve_typestate)

    escape = commands.add_parser(
        "solve-escape", help="resolve an object-locality query on a program file"
    )
    escape.add_argument("file")
    escape.add_argument("--query", required=True, help="observe label to check")
    escape.add_argument("--var", required=True, help="variable whose locality to prove")
    _add_common(escape)
    escape.set_defaults(func=_cmd_solve_escape)

    provenance = commands.add_parser(
        "solve-provenance",
        help="resolve an allocation-site provenance query on a program file",
    )
    provenance.add_argument("file")
    provenance.add_argument("--query", required=True, help="observe label to check")
    provenance.add_argument("--var", required=True, help="variable whose provenance to prove")
    provenance.add_argument(
        "--allowed",
        default="",
        help="comma-separated allowed allocation sites (default: all)",
    )
    _add_common(provenance)
    provenance.set_defaults(func=_cmd_solve_provenance)

    evaluation = commands.add_parser(
        "eval", help="run the paper's full evaluation on the synthetic suite"
    )
    evaluation.add_argument(
        "--quick", action="store_true", help="only the 4 smallest benchmarks"
    )
    evaluation.add_argument("--k", type=_beam, default=5, metavar="K")
    evaluation.add_argument(
        "--engine", choices=("interpreted", "compiled"), default="interpreted",
        help="forward-phase engine for every workload (see --engine above)",
    )
    evaluation.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan independent workloads across N worker processes",
    )
    evaluation.add_argument(
        "--json", metavar="PATH", help="also write results as JSON"
    )
    evaluation.add_argument(
        "--retries", type=int, default=3, metavar="N",
        help="attempts per work unit before it is recorded as failed "
             "(crashed workers are respawned between attempts)",
    )
    evaluation.add_argument(
        "--unit-timeout", type=float, default=None, metavar="S",
        help="wall-clock allowance per work-unit attempt under --jobs",
    )
    evaluation.add_argument(
        "--checkpoint", metavar="FILE",
        help="append completed work units to a JSONL checkpoint",
    )
    evaluation.add_argument(
        "--resume", action="store_true",
        help="load the --checkpoint file and run only unfinished units",
    )
    evaluation.add_argument(
        "--inject", action="append", default=[], metavar="SITE:ACTION[:K=V,..]",
        help="deterministic fault injection (repeatable; see docs/ROBUSTNESS.md)",
    )
    evaluation.add_argument(
        "--certify-out", metavar="FILE",
        help="write one verdict certificate per resolved query to FILE "
             "(validate with 'repro certify FILE')",
    )
    _add_obs(evaluation)
    evaluation.set_defaults(func=_cmd_eval)

    certify = commands.add_parser(
        "certify",
        help="independently re-validate a file of verdict certificates",
    )
    certify.add_argument("file", help="JSONL certificate file (--certify-out)")
    certify.set_defaults(func=_cmd_certify)

    selfcheck = commands.add_parser(
        "selfcheck",
        help="machine-check a client analysis's transfer/wp contracts "
             "on a program file",
    )
    selfcheck.add_argument(
        "analysis", choices=("typestate", "escape", "provenance")
    )
    selfcheck.add_argument("file")
    selfcheck.add_argument(
        "--automaton", choices=("file", "stress"), default="file",
        help="type-state property automaton (typestate only)",
    )
    selfcheck.add_argument(
        "--site", help="tracked allocation site (typestate only; default: first)"
    )
    selfcheck.add_argument(
        "--max-violations", type=int, default=10, metavar="N",
        help="stop after reporting N violations per check",
    )
    selfcheck.set_defaults(func=_cmd_selfcheck)

    info = commands.add_parser("info", help="print one benchmark's statistics")
    info.add_argument("name")
    info.set_defaults(func=_cmd_info)

    trace = commands.add_parser(
        "trace", help="validate, summarize, or replay a recorded JSONL trace"
    )
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)

    validate = trace_commands.add_parser(
        "validate", help="check a trace file against the event schema"
    )
    validate.add_argument("file")
    validate.set_defaults(func=_cmd_trace_validate)

    summarize = trace_commands.add_parser(
        "summarize",
        help="per-phase wall-clock breakdown (forward / backward / synthesis)",
    )
    summarize.add_argument("file")
    summarize.set_defaults(func=_cmd_trace_summarize)

    transcript = trace_commands.add_parser(
        "transcript",
        help="rebuild a Figure-1 style transcript from a detail trace",
    )
    transcript.add_argument("file")
    transcript.add_argument(
        "--query", help="which query to narrate (required for multi-query traces)"
    )
    transcript.set_defaults(func=_cmd_trace_transcript)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
