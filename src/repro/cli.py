"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``solve-typestate FILE`` — resolve a type-state query on a program
  written in the text syntax of :mod:`repro.lang.parser`;
* ``solve-escape FILE`` — resolve a thread-escape (object locality)
  query on such a program;
* ``eval`` — run the paper's full evaluation (Tables 1-4, Figures
  12-14) on the synthetic benchmark suite;
* ``certify FILE`` — independently re-validate verdict certificates
  emitted by ``--certify-out`` (see ``docs/ROBUSTNESS.md``);
* ``selfcheck ANALYSIS FILE`` — machine-check a client analysis's
  transfer/wp contracts on a program (``docs/WRITING_A_CLIENT.md``);
* ``info NAME`` — print one benchmark's Table 1 row and query counts;
* ``serve`` / ``submit`` — the analysis daemon and its client
  (``docs/SERVING.md``);
* ``top`` — live TTY dashboard over a running daemon (QPS, tier mix,
  latency quantiles; ``--once`` for a single snapshot frame);
* ``trace validate|summarize|profile|transcript FILE...`` — work with
  recorded JSONL traces (see ``--trace-out`` and
  ``docs/OBSERVABILITY.md``); ``summarize`` and ``profile`` accept
  multiple files and merge the streams deterministically.

Variable/site/field universes are inferred from the program text, so a
minimal invocation is just::

    python -m repro solve-typestate prog.rp --query check1 --allowed closed
    python -m repro solve-escape prog.rp --query pc --var u

Every solver accepts ``--trace-out FILE`` (record a structured JSONL
trace of the search) and ``--progress`` (live per-iteration feed on
stderr); ``eval`` accepts the same and merges worker traces
deterministically under ``--jobs``.

Robustness flags (see ``docs/ROBUSTNESS.md``): solvers take
``--max-seconds`` / ``--max-steps`` (cooperative budgets resolving
overruns as UNRESOLVED), ``--lenient`` (contain client errors),
``--inject`` (deterministic fault injection), ``--journal`` /
``--resume-journal`` (crash-recoverable CEGAR journal), and
``--certify-out`` (emit independently checkable verdict certificates);
``eval`` adds ``--retries`` / ``--unit-timeout`` (crash-surviving
worker pool), ``--checkpoint`` / ``--resume`` (JSONL checkpoint of
completed units), and ``--certify-out``.

Exit codes are meaningful so scripts can branch on the verdict:

* 0 — proven (solvers) / evaluation fully resolved;
* 10 — IMPOSSIBLE: no abstraction in the family proves the query;
* 20 — EXHAUSTED: budgets/errors stopped the search short of a verdict;
* 30 — ``eval`` finished but some work units failed permanently;
* 1 — operational failure (``certify``/``selfcheck`` found violations,
  invalid trace, bad arguments).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.narrate import narrate, transcript_from_events
from repro.core.stats import QueryStatus
from repro.core.tracer import TracerConfig
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs
from repro.obs.aggregate import profile_trace, render_profile
from repro.obs.events import SCHEMA_VERSION, merge_streams
from repro.obs.sinks import JsonlSink, MultiSink, Sink, TtySink
from repro.obs.summarize import (
    load_trace,
    render_summary,
    summarize_trace,
    validate_trace,
)
from repro.escape.client import EscapeQuery
from repro.provenance.client import ProvenanceQuery
from repro.typestate.client import TypestateQuery

#: Verdict exit codes (documented above; tested in tests/test_cli.py).
EXIT_OK = 0
EXIT_IMPOSSIBLE = 10
EXIT_EXHAUSTED = 20
EXIT_FAILED_UNITS = 30


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--k", type=_beam, default=5, metavar="K",
                        help="beam width of the meta-analysis; 'none' disables it")
    parser.add_argument("--max-iterations", type=int, default=60)
    parser.add_argument("--narrate", action="store_true",
                        help="print the full Figure-1 style transcript")
    parser.add_argument(
        "--engine", choices=("interpreted", "compiled"), default="interpreted",
        help="forward-phase engine: 'compiled' runs the bitset kernel "
             "(bit-identical verdicts, faster); default interpreted",
    )
    _add_robust(parser)
    _add_journal(parser)
    _add_obs(parser)


def _add_robust(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--max-seconds", type=float, default=None, metavar="S",
        help="per-query wall-clock budget; overruns resolve as UNRESOLVED",
    )
    parser.add_argument(
        "--max-steps", type=int, default=None, metavar="N",
        help="per-query solver step budget (worklist iterations + backward "
             "commands); overruns resolve as UNRESOLVED",
    )
    parser.add_argument(
        "--lenient", action="store_true",
        help="contain unexpected client errors to the failing query "
             "instead of crashing the solve",
    )
    parser.add_argument(
        "--inject", action="append", default=[], metavar="SITE:ACTION[:K=V,..]",
        help="deterministic fault injection for robustness testing, e.g. "
             "'backward:raise:error=explosion' or 'forward_run:delay:delay=0.1' "
             "(repeatable; see docs/ROBUSTNESS.md)",
    )


def _add_journal(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--journal", metavar="FILE",
        help="append a crash-recoverable search journal to FILE "
             "(one JSONL round record per CEGAR iteration)",
    )
    parser.add_argument(
        "--resume-journal", metavar="FILE",
        help="replay FILE's recorded rounds before searching live, then "
             "keep journaling to it (resuming a killed solve)",
    )
    parser.add_argument(
        "--certify-out", metavar="FILE",
        help="write an independently checkable verdict certificate per "
             "resolved query to FILE (validate with 'repro certify')",
    )
    parser.add_argument(
        "--store", metavar="FILE",
        help="attach a persistent cross-run knowledge store: warm-start "
             "this search from FILE's recorded knowledge and record the "
             "finished search back to it (see docs/SERVING.md)",
    )


def _add_obs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", metavar="FILE",
        help="record a structured JSONL trace of the search to FILE",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print live per-iteration progress to stderr",
    )


def _build_sink(args) -> Optional[Sink]:
    """Combine the sinks requested on the command line (or ``None``)."""
    sinks: List[Sink] = []
    if getattr(args, "trace_out", None):
        sinks.append(JsonlSink(args.trace_out))
    if getattr(args, "progress", False):
        sinks.append(TtySink(sys.stderr))
    if not sinks:
        return None
    return sinks[0] if len(sinks) == 1 else MultiSink(sinks)


def _beam(text: str) -> Optional[int]:
    if text.lower() in ("none", "all", "off"):
        return None
    return int(text)


def _config(args) -> TracerConfig:
    return TracerConfig(
        k=args.k,
        max_iterations=args.max_iterations,
        max_seconds=getattr(args, "max_seconds", None),
        max_steps=getattr(args, "max_steps", None),
        strict=not getattr(args, "lenient", False),
        engine=getattr(args, "engine", "interpreted"),
    )


def _fault_plan(args):
    """Build the ``--inject`` fault plan, or ``None``."""
    specs = getattr(args, "inject", None) or []
    if not specs:
        return None
    from repro.robust.faults import FaultPlan

    try:
        return FaultPlan.from_specs(specs)
    except ValueError as error:
        _die(str(error))


def _report(client, query, args, stamp: Optional[dict] = None) -> int:
    from repro.robust.faults import fault_scope

    with fault_scope(_fault_plan(args)):
        return _report_inner(client, query, args, stamp)


def _status_code(status: QueryStatus) -> int:
    if status is QueryStatus.IMPOSSIBLE:
        return EXIT_IMPOSSIBLE
    if status is QueryStatus.EXHAUSTED:
        return EXIT_EXHAUSTED
    return EXIT_OK


def _open_journal(args):
    """Build the ``--journal`` / ``--resume-journal`` journal, or
    ``None`` when neither was requested."""
    journal_path = getattr(args, "journal", None)
    resume_path = getattr(args, "resume_journal", None)
    if journal_path and resume_path:
        _die("pass either --journal or --resume-journal, not both")
    if not journal_path and not resume_path:
        return None
    from repro.robust.journal import SearchJournal

    return SearchJournal(resume_path or journal_path, resume=bool(resume_path))


def _report_inner(client, query, args, stamp: Optional[dict] = None) -> int:
    sink = _build_sink(args)
    journal = _open_journal(args)
    certify_out = getattr(args, "certify_out", None)
    if args.narrate and (journal is not None or certify_out):
        _die("--narrate cannot be combined with --journal/--resume-journal/"
             "--certify-out (journaled runs use the driver, not the narrator)")
    if args.narrate:
        # narrate installs its own detail-tracing context and forwards
        # the event stream to the extra sink, so --trace-out traces
        # carry the full per-iteration detail payloads.
        transcript = narrate(client, query, _config(args), sink=sink)
        print(transcript.render())
        status = transcript.status
        abstraction = transcript.abstraction
        iterations = len(transcript.iterations)
    else:
        store = None
        if certify_out:
            from repro.robust.certify import CertificateStore

            store = CertificateStore()
        try:
            record = _solve_traced(
                client, query, args, sink, journal=journal, certificates=store
            )
        finally:
            if journal is not None:
                journal.close()
        if store is not None:
            from repro.robust.certify import write_certificates

            if stamp is not None:
                store.stamp(stamp)
            write_certificates(store.certificates, certify_out)
            print(f"wrote {len(store.certificates)} certificate(s) "
                  f"to {certify_out}")
        status = record.status
        abstraction = record.abstraction
        iterations = record.iterations
        if status is QueryStatus.PROVEN:
            shown = "{" + ", ".join(sorted(abstraction)) + "}"
            print(f"PROVEN with cheapest abstraction {shown} "
                  f"({iterations} iterations)")
        elif status is QueryStatus.IMPOSSIBLE:
            print(f"IMPOSSIBLE: no abstraction in the family proves the "
                  f"query ({iterations} iterations)")
        else:
            print(f"UNRESOLVED after {iterations} iterations")
    return _status_code(status)


def _open_store(args):
    """Open the ``--store`` knowledge store, or ``None``."""
    path = getattr(args, "store", None)
    if not path:
        return None
    from repro.serve.store import KnowledgeStore

    try:
        return KnowledgeStore(path)
    except ValueError as error:
        _die(str(error))


def _solve_traced(client, query, args, sink: Optional[Sink],
                  journal=None, certificates=None):
    """Run one query through the process-wide analysis session (which
    owns the forward-run cache, so it outlives the solve — the metrics
    registry holds weak references — and, under ``--store``, the
    warm-start against the knowledge store)."""
    from repro.serve.session import process_session

    config = _config(args)
    session = process_session()
    store = _open_store(args)
    previous = session.store
    session.store = store
    source = f"cli:{getattr(args, 'file', '')}:{query}"
    try:
        if sink is None:
            result = session.solve(
                client, [query], config,
                journal=journal, certificates=certificates, source=source,
            )
        else:
            with obs.tracing(sink, detail=bool(args.trace_out)):
                result = session.solve(
                    client, [query], config,
                    journal=journal, certificates=certificates,
                    source=source,
                )
                # Close the trace with one metric record per registered
                # cache (the client's caches registered on construction,
                # before this function ran, so read the ambient registry
                # — not a scoped one).
                for name, counters in sorted(
                    obs_metrics.current_registry().snapshot().items()
                ):
                    obs.metric(name, counters.hits, counters.misses)
    finally:
        session.store = previous
        if store is not None:
            store.close()
    if store is not None:
        print(f"store: {result.mode}"
              + (" (replayed without re-running the search)"
                 if result.store_hit else ""),
              file=sys.stderr)
    return result.records[query]


def _read_program_file(path: str) -> str:
    try:
        with open(path) as handle:
            return handle.read()
    except OSError as error:
        _die(str(error))


def _typestate_client(path: str, automaton_name: str, site: Optional[str]):
    """Build the type-state client of one program file through the
    resident session.  Shared by ``solve-typestate``, ``selfcheck``,
    and the ``certify`` rebuild, so a certificate's stamp reconstructs
    the exact emitting client."""
    from repro.serve.session import process_session

    try:
        return process_session().typestate_client(
            _read_program_file(path), automaton_name, site
        )
    except ValueError as error:
        _die(f"{path}: {error}")


def _escape_client(path: str):
    from repro.serve.session import process_session

    try:
        return process_session().escape_client(_read_program_file(path))
    except ValueError as error:
        _die(f"{path}: {error}")


def _provenance_client(path: str):
    from repro.serve.session import process_session

    try:
        return process_session().provenance_client(_read_program_file(path))
    except ValueError as error:
        _die(f"{path}: {error}")


def _require_label(universe, label: str) -> None:
    if label not in universe.observe_labels:
        _die(f"no 'observe {label}' in the program "
             f"(labels: {sorted(universe.observe_labels)})")


def _cmd_solve_typestate(args) -> int:
    client, universe, automaton, site = _typestate_client(
        args.file, args.automaton, args.site
    )
    _require_label(universe, args.query)
    allowed = frozenset(args.allowed.split(","))
    unknown = allowed - automaton.states
    if unknown:
        _die(f"unknown type-states {sorted(unknown)}; "
             f"automaton has {sorted(automaton.states)}")
    print(f"tracking site {site} with the {automaton.name} automaton; "
          f"{len(universe.variables)} variables (2^{len(universe.variables)} abstractions)")
    stamp = {
        "kind": "typestate",
        "file": args.file,
        "query": args.query,
        "allowed": sorted(allowed),
        "automaton": args.automaton,
        "site": site,
    }
    return _report(client, TypestateQuery(args.query, allowed), args, stamp)


def _cmd_solve_escape(args) -> int:
    client, universe = _escape_client(args.file)
    _require_label(universe, args.query)
    if args.var not in universe.variables:
        _die(f"unknown variable {args.var!r} "
             f"(variables: {sorted(universe.variables)})")
    print(f"{len(universe.sites)} allocation sites "
          f"(2^{len(universe.sites)} abstractions)")
    stamp = {
        "kind": "escape",
        "file": args.file,
        "query": args.query,
        "var": args.var,
    }
    return _report(client, EscapeQuery(args.query, args.var), args, stamp)


def _cmd_solve_provenance(args) -> int:
    client, universe = _provenance_client(args.file)
    _require_label(universe, args.query)
    if args.var not in universe.variables:
        _die(f"unknown variable {args.var!r} "
             f"(variables: {sorted(universe.variables)})")
    if args.allowed:
        allowed = frozenset(args.allowed.split(","))
        unknown = allowed - universe.sites
        if unknown:
            _die(f"unknown sites {sorted(unknown)} "
                 f"(sites: {sorted(universe.sites)})")
    else:
        allowed = universe.sites
    print(f"{len(universe.sites)} allocation sites "
          f"(2^{len(universe.sites)} abstractions); "
          f"allowed: {sorted(allowed)}")
    stamp = {
        "kind": "provenance",
        "file": args.file,
        "query": args.query,
        "var": args.var,
        "allowed": sorted(allowed),
    }
    return _report(
        client, ProvenanceQuery(args.query, args.var, allowed), args, stamp
    )


def _cmd_eval(args) -> int:
    from repro.bench.parallel import RunOptions
    from repro.bench.report import SMALLEST, full_report
    from repro.bench.suite import BENCHMARK_NAMES
    from repro.robust.faults import fault_scope
    from repro.robust.pool import RetryPolicy

    names = SMALLEST if args.quick else BENCHMARK_NAMES
    if args.resume and not args.checkpoint:
        _die("--resume needs --checkpoint FILE to resume from")
    plan = _fault_plan(args)
    options = RunOptions(
        retry=RetryPolicy(
            max_attempts=args.retries, unit_timeout=args.unit_timeout
        ),
        checkpoint_path=args.checkpoint,
        resume=args.resume,
        fault_plan=plan,
        certify=bool(args.certify_out),
        scheduler=args.scheduler,
        group_size=max(0, args.group_size),
        heartbeat_interval=args.heartbeat_interval,
        lease_ttl=args.lease_ttl,
        clause_bus=not args.no_clause_bus,
    )

    config = TracerConfig(
        k=args.k, max_iterations=30, engine=getattr(args, "engine", "interpreted")
    )

    def run():
        # With worker processes the plan ships inside ``options``; on
        # the serial path it installs ambiently around the whole run.
        with fault_scope(plan if args.jobs <= 1 else None):
            return full_report(
                names=names, k=args.k, jobs=args.jobs, options=options,
                config=config,
            )

    sink = _build_sink(args)
    if sink is None:
        results = run()
    else:
        # One ambient context around the whole evaluation: the serial
        # harness emits into it directly; the parallel harness collects
        # worker streams and replays them here in work-unit order.
        with obs.tracing(sink):
            results = run()
    if args.json:
        from repro.bench.export import export_json

        export_json(results, args.json)
        print(f"wrote {args.json}")
    if args.certify_out:
        from repro.robust.certify import write_certificates

        certificates = [
            cert
            for per_analysis in results.values()
            for result in per_analysis.values()
            for cert in result.certificates
        ]
        write_certificates(certificates, args.certify_out)
        print(f"wrote {len(certificates)} certificate(s) to {args.certify_out}")
    failed = [
        unit
        for per_analysis in results.values()
        for result in per_analysis.values()
        for unit in result.failed_units
    ]
    return EXIT_FAILED_UNITS if failed else EXIT_OK


def _cmd_certify(args) -> int:
    from repro.robust.certify import check_certificate, load_certificates

    try:
        certificates = load_certificates(args.file)
    except (OSError, ValueError) as error:
        _die(str(error))
    if not certificates:
        print("no certificates to check")
        return 0
    memo: dict = {}
    failures = 0
    for cert in certificates:
        label = f"{cert.get('verdict', '?'):<10} {cert.get('query', '?')}"
        try:
            client, query = _certified_client(cert, memo)
        except (KeyError, IndexError, TypeError, ValueError) as error:
            print(f"FAIL {label}: cannot rebuild the emitting client "
                  f"from the stamp ({error!r})")
            failures += 1
            continue
        report = check_certificate(client, query, cert)
        if report.ok:
            print(f"OK   {label}")
        else:
            failures += 1
            print(f"FAIL {label}")
            for problem in report.problems:
                print(f"     - {problem}")
    print(f"{len(certificates) - failures}/{len(certificates)} "
          f"certificates check out")
    return 0 if failures == 0 else 1


def _certified_client(cert: dict, memo: dict):
    """Rebuild the ``(client, query)`` a certificate was emitted
    against, from its ``client`` stamp alone.  ``memo`` caches prepared
    benchmarks and parsed programs across certificates of one file."""
    stamp = cert.get("client")
    if not isinstance(stamp, dict):
        raise KeyError("certificate carries no client stamp")
    kind = stamp.get("kind")
    if kind == "bench":
        from repro.bench.harness import analysis_setups, prepare

        name = stamp["benchmark"]
        bench = memo.get(("bench", name))
        if bench is None:
            bench = memo[("bench", name)] = prepare(name)
        key = ("setups", name, stamp["analysis"])
        setups = memo.get(key)
        if setups is None:
            setups = memo[key] = analysis_setups(bench, stamp["analysis"])
        client, queries = setups[stamp["index"]]
        query = queries[stamp["query_index"]]
    elif kind == "typestate":
        key = ("typestate", stamp["file"], stamp["automaton"], stamp["site"])
        client = memo.get(key)
        if client is None:
            client, _universe, _automaton, _site = _typestate_client(
                stamp["file"], stamp["automaton"], stamp["site"]
            )
            memo[key] = client
        query = TypestateQuery(stamp["query"], frozenset(stamp["allowed"]))
    elif kind == "escape":
        key = ("escape", stamp["file"])
        client = memo.get(key)
        if client is None:
            client, _universe = _escape_client(stamp["file"])
            memo[key] = client
        query = EscapeQuery(stamp["query"], stamp["var"])
    elif kind == "provenance":
        key = ("provenance", stamp["file"])
        client = memo.get(key)
        if client is None:
            client, _universe = _provenance_client(stamp["file"])
            memo[key] = client
        query = ProvenanceQuery(
            stamp["query"], stamp["var"], frozenset(stamp["allowed"])
        )
    else:
        raise ValueError(f"unknown client stamp kind {kind!r}")
    if str(query) != cert.get("query"):
        raise ValueError(
            f"stamp rebuilds query {str(query)!r} but the certificate "
            f"is about {cert.get('query')!r}"
        )
    return client, query


def _cmd_selfcheck(args) -> int:
    from repro.core.selfcheck import check_transfer_total, check_wp
    from repro.lang.ast import atoms_of

    if args.analysis == "typestate":
        client, _universe, _automaton, _site = _typestate_client(
            args.file, args.automaton, args.site
        )
    elif args.analysis == "escape":
        client, _universe = _escape_client(args.file)
    else:
        client, _universe = _provenance_client(args.file)
    prims, pairs = client.selfcheck_space()
    pairs = list(pairs)
    commands = list(atoms_of(client.program))
    print(f"selfcheck: {len(commands)} commands x {len(prims)} primitives "
          f"x {len(pairs)} (p, d) samples")
    violations = check_transfer_total(
        client.analysis, commands, pairs, max_violations=args.max_violations
    )
    violations += check_wp(
        client.analysis, client.meta, commands, prims, pairs,
        max_violations=args.max_violations,
    )
    if violations:
        for violation in violations:
            print(f"  {violation}")
        print(f"FAILED: {len(violations)} violation(s)")
        return 1
    print("OK: transfer totality and wp-homomorphism hold on every sample")
    return 0


def _cmd_trace_validate(args) -> int:
    records = _load_trace_or_die(args.file)
    errors = validate_trace(records)
    if errors:
        for error in errors:
            print(f"invalid: {error}", file=sys.stderr)
        return 1
    print(f"OK: {len(records)} records, schema version {SCHEMA_VERSION}")
    return 0


def _load_merged_traces(paths: List[str]) -> List[dict]:
    """Load one or more trace files; multiple files are merged through
    ``merge_streams`` (worker/daemon traces need no hand-merging)."""
    streams = [_load_trace_or_die(path) for path in paths]
    if len(streams) == 1:
        return streams[0]
    return merge_streams(streams)


def _cmd_trace_summarize(args) -> int:
    records = _load_merged_traces(args.files)
    errors = validate_trace(records)
    if errors:
        for error in errors:
            print(f"invalid: {error}", file=sys.stderr)
        return 1
    print(render_summary(summarize_trace(records)))
    return 0


def _cmd_trace_profile(args) -> int:
    streams = [_load_trace_or_die(path) for path in args.files]
    for path, stream in zip(args.files, streams):
        errors = validate_trace(
            stream if len(streams) == 1 else merge_streams([stream])
        )
        if errors:
            for error in errors:
                print(f"invalid ({path}): {error}", file=sys.stderr)
            return 1
    profile = profile_trace(streams)
    print(render_profile(profile, top=args.top, by_trace=args.by_trace))
    return 0


def _cmd_trace_transcript(args) -> int:
    records = _load_trace_or_die(args.file)
    try:
        transcript = transcript_from_events(records, query=args.query)
    except ValueError as error:
        _die(str(error))
    print(transcript.render())
    return 0


def _load_trace_or_die(path: str) -> List[dict]:
    try:
        return load_trace(path)
    except (OSError, ValueError) as error:
        _die(str(error))


def _cmd_info(args) -> int:
    from repro.bench.harness import escape_setup, prepare, typestate_setup
    from repro.bench.tables import render_table1

    bench = prepare(args.name)
    print(render_table1([bench.metrics]))
    _client, escape_queries = escape_setup(bench)
    typestate_queries = sum(len(qs) for _c, qs in typestate_setup(bench))
    print(f"\nqueries: {typestate_queries} type-state, {len(escape_queries)} thread-escape")
    print(f"recursion cuts during inlining: {bench.inlined.recursion_cuts}")
    return 0


def _die(message: str) -> None:
    raise SystemExit(f"error: {message}")


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serve.server import AnalysisServer

    config = TracerConfig(
        k=args.k,
        max_iterations=args.max_iterations,
        max_seconds=args.max_seconds,
        max_steps=args.max_steps,
        engine=args.engine,
    )
    try:
        server = AnalysisServer(
            args.socket,
            args.store,
            config,
            metrics_out=args.metrics_out,
            metrics_interval=args.metrics_interval,
            workers=args.workers,
            queue_depth=args.queue_depth,
            max_deadline_ms=args.max_deadline_ms,
            request_timeout=args.request_timeout,
            max_request_bytes=args.max_request_bytes,
            compact_ratio=args.compact_ratio,
            compact_min_entries=args.compact_min_entries,
            fault_specs=tuple(args.inject or ()),
        )
    except (ValueError, OSError) as error:
        _die(str(error))
    print(
        f"repro daemon listening on {args.socket}"
        + (f" (store: {args.store})" if args.store else "")
        + (f" ({args.workers} supervised workers)" if args.workers else
           " (inline execution)"),
        file=sys.stderr,
    )
    from repro.robust import faults

    # The daemon-side fault plan (chaos testing): sites like
    # serve.worker_kill and store.compact.* fire in this process; the
    # same specs ship to each pool worker, whose plan counts afresh.
    plan = (
        faults.FaultPlan.from_specs(list(args.inject))
        if args.inject else None
    )
    try:
        with faults.fault_scope(plan):
            if args.trace_out:
                # The trace context is a module global, so the worker
                # thread the requests run on sees it too.
                with obs.tracing(JsonlSink(args.trace_out)):
                    asyncio.run(server.run())
            else:
                asyncio.run(server.run())
    except KeyboardInterrupt:
        pass
    return EXIT_OK


def _cmd_top(args) -> int:
    from repro.serve.client import ServeError
    from repro.serve.top import run_lease_top, run_top

    if args.leases and args.socket:
        _die("--socket and --leases are mutually exclusive")
    if not args.leases and not args.socket:
        _die("top needs --socket PATH (daemon) or --leases FILE (scheduler)")
    try:
        if args.leases:
            return run_lease_top(
                args.leases,
                ttl=args.lease_ttl,
                interval=args.interval,
                frames=1 if args.once else args.frames,
                clear=not args.no_clear and sys.stdout.isatty(),
            )
        return run_top(
            args.socket,
            interval=args.interval,
            frames=1 if args.once else args.frames,
            clear=not args.no_clear and sys.stdout.isatty(),
        )
    except ServeError as error:
        _die(str(error))
    except KeyboardInterrupt:
        return EXIT_OK


def _cmd_store(args) -> int:
    import os

    from repro.serve.store import KnowledgeStore, verify_store

    if not os.path.exists(args.file):
        _die(f"no such store: {args.file}")
    if args.store_command == "verify":
        problems, summary = verify_store(args.file)
        print(json.dumps(summary, indent=2, sort_keys=True))
        for problem in problems:
            print(f"PROBLEM: {problem}", file=sys.stderr)
        if problems:
            print(f"{len(problems)} problem(s) found", file=sys.stderr)
            return EXIT_FAILED_UNITS
        print("store is healthy", file=sys.stderr)
        return EXIT_OK
    # compact and stats open the store in shared mode: flock-
    # coordinated, safe while a daemon is serving from the same file.
    try:
        with KnowledgeStore(args.file, shared=True) as store:
            if args.store_command == "stats":
                print(json.dumps(store.stats(), indent=2, sort_keys=True))
            else:
                result = store.compact()
                print(json.dumps(result, indent=2, sort_keys=True))
                print(
                    f"compacted: {result['entries_before']} -> "
                    f"{result['entries_after']} entries, "
                    f"{result['bytes_before']} -> "
                    f"{result['bytes_after']} bytes",
                    file=sys.stderr,
                )
    except ValueError as error:
        _die(str(error))
    return EXIT_OK


def _worst_verdict_code(results: List[dict]) -> int:
    code = EXIT_OK
    for entry in results:
        if entry["verdict"] == QueryStatus.EXHAUSTED.value:
            code = max(code, EXIT_EXHAUSTED)
        elif entry["verdict"] == QueryStatus.IMPOSSIBLE.value:
            code = max(code, EXIT_IMPOSSIBLE)
    return code


def _cmd_submit(args) -> int:
    from repro.serve.client import ServeClient, ServeError

    client = ServeClient(args.socket, timeout=args.timeout,
                         retries=args.retries)
    config = {}
    if args.max_seconds is not None:
        config["max_seconds"] = args.max_seconds
    if args.max_steps is not None:
        config["max_steps"] = args.max_steps
    extra = {}
    if args.deadline_ms is not None:
        extra["deadline_ms"] = args.deadline_ms
    try:
        if args.ping:
            reply = client.ping()
            print(f"pong from pid {reply['pid']}")
            return EXIT_OK
        if args.stats:
            reply = client.stats()
            print(json.dumps(reply, indent=2, sort_keys=True))
            return EXIT_OK
        if args.metrics:
            reply = client.metrics()
            sys.stdout.write(reply["prometheus"])
            return EXIT_OK
        if args.shutdown:
            client.shutdown()
            print("daemon stopping")
            return EXIT_OK
        if args.benchmark:
            reply = client.solve_benchmark(
                args.benchmark, args.analysis, config or None, **extra
            )
            by_verdict: dict = {}
            for entry in reply["results"]:
                by_verdict[entry["verdict"]] = (
                    by_verdict.get(entry["verdict"], 0) + 1
                )
            shown = ", ".join(
                f"{count} {verdict}"
                for verdict, count in sorted(by_verdict.items())
            )
            print(
                f"{args.benchmark}/{args.analysis}: "
                f"{len(reply['results'])} queries ({shown or 'none'}); "
                f"modes: {', '.join(reply['modes'])}; "
                f"store hits: {reply['store_hits']}"
            )
            return _worst_verdict_code(reply["results"])
        if not args.file or not args.query:
            _die("submit needs a FILE and --query "
                 "(or --ping/--stats/--metrics/--shutdown/--benchmark)")
        params = {"source": f"cli:{args.file}"}
        if args.kind == "typestate":
            params["automaton"] = args.automaton
            if args.site:
                params["site"] = args.site
            if args.allowed:
                params["allowed"] = args.allowed.split(",")
        else:
            if not args.var:
                _die(f"--kind {args.kind} needs --var")
            params["var"] = args.var
            if args.kind == "provenance" and args.allowed:
                params["allowed"] = args.allowed.split(",")
        reply = client.solve(
            args.kind,
            _read_program_file(args.file),
            query=args.query,
            config=config or None,
            **extra,
            **params,
        )
    except ServeError as error:
        _die(str(error))
    entry = reply["results"][0]
    print(f"store: {reply['mode']}", file=sys.stderr)
    if entry["verdict"] == QueryStatus.PROVEN.value:
        shown = "{" + ", ".join(entry["abstraction"]) + "}"
        print(f"PROVEN with cheapest abstraction {shown} "
              f"({entry['iterations']} iterations)")
    elif entry["verdict"] == QueryStatus.IMPOSSIBLE.value:
        print(f"IMPOSSIBLE: no abstraction in the family proves the "
              f"query ({entry['iterations']} iterations)")
    else:
        print(f"UNRESOLVED after {entry['iterations']} iterations")
    return _worst_verdict_code(reply["results"])


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    typestate = commands.add_parser(
        "solve-typestate", help="resolve a type-state query on a program file"
    )
    typestate.add_argument("file")
    typestate.add_argument("--query", required=True, help="observe label to check")
    typestate.add_argument(
        "--allowed", default="closed",
        help="comma-separated type-states allowed at the query (default: closed)",
    )
    typestate.add_argument(
        "--automaton", choices=("file", "stress"), default="file"
    )
    typestate.add_argument("--site", help="tracked allocation site (default: first)")
    _add_common(typestate)
    typestate.set_defaults(func=_cmd_solve_typestate)

    escape = commands.add_parser(
        "solve-escape", help="resolve an object-locality query on a program file"
    )
    escape.add_argument("file")
    escape.add_argument("--query", required=True, help="observe label to check")
    escape.add_argument("--var", required=True, help="variable whose locality to prove")
    _add_common(escape)
    escape.set_defaults(func=_cmd_solve_escape)

    provenance = commands.add_parser(
        "solve-provenance",
        help="resolve an allocation-site provenance query on a program file",
    )
    provenance.add_argument("file")
    provenance.add_argument("--query", required=True, help="observe label to check")
    provenance.add_argument("--var", required=True, help="variable whose provenance to prove")
    provenance.add_argument(
        "--allowed",
        default="",
        help="comma-separated allowed allocation sites (default: all)",
    )
    _add_common(provenance)
    provenance.set_defaults(func=_cmd_solve_provenance)

    evaluation = commands.add_parser(
        "eval", help="run the paper's full evaluation on the synthetic suite"
    )
    evaluation.add_argument(
        "--quick", action="store_true", help="only the 4 smallest benchmarks"
    )
    evaluation.add_argument("--k", type=_beam, default=5, metavar="K")
    evaluation.add_argument(
        "--engine", choices=("interpreted", "compiled"), default="interpreted",
        help="forward-phase engine for every workload (see --engine above)",
    )
    evaluation.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan independent workloads across N worker processes",
    )
    evaluation.add_argument(
        "--json", metavar="PATH", help="also write results as JSON"
    )
    evaluation.add_argument(
        "--retries", type=int, default=3, metavar="N",
        help="attempts per work unit before it is recorded as failed "
             "(crashed workers are respawned between attempts)",
    )
    evaluation.add_argument(
        "--unit-timeout", type=float, default=None, metavar="S",
        help="wall-clock allowance per work-unit attempt under --jobs",
    )
    evaluation.add_argument(
        "--checkpoint", metavar="FILE",
        help="append completed work units to a JSONL checkpoint",
    )
    evaluation.add_argument(
        "--resume", action="store_true",
        help="load the --checkpoint file and run only unfinished units",
    )
    evaluation.add_argument(
        "--inject", action="append", default=[], metavar="SITE:ACTION[:K=V,..]",
        help="deterministic fault injection (repeatable; see docs/ROBUSTNESS.md)",
    )
    evaluation.add_argument(
        "--scheduler", choices=("leases", "waves"), default="leases",
        help="parallel scheduling model: lease-based work stealing "
             "(default) or the lock-step wave pool",
    )
    evaluation.add_argument(
        "--group-size", type=int, default=0, metavar="N",
        help="lease scheduler: split each unit's queries into groups of "
             "at most N for sub-unit stealing/resume (0 = whole units)",
    )
    evaluation.add_argument(
        "--heartbeat-interval", type=float, default=0.25, metavar="S",
        help="lease scheduler: worker heartbeat period",
    )
    evaluation.add_argument(
        "--lease-ttl", type=float, default=5.0, metavar="S",
        help="lease scheduler: a lease is stealable after its worker "
             "has been silent this long",
    )
    evaluation.add_argument(
        "--no-clause-bus", action="store_true",
        help="lease scheduler: disable cross-worker clause sharing",
    )
    evaluation.add_argument(
        "--certify-out", metavar="FILE",
        help="write one verdict certificate per resolved query to FILE "
             "(validate with 'repro certify FILE')",
    )
    _add_obs(evaluation)
    evaluation.set_defaults(func=_cmd_eval)

    certify = commands.add_parser(
        "certify",
        help="independently re-validate a file of verdict certificates",
    )
    certify.add_argument("file", help="JSONL certificate file (--certify-out)")
    certify.set_defaults(func=_cmd_certify)

    selfcheck = commands.add_parser(
        "selfcheck",
        help="machine-check a client analysis's transfer/wp contracts "
             "on a program file",
    )
    selfcheck.add_argument(
        "analysis", choices=("typestate", "escape", "provenance")
    )
    selfcheck.add_argument("file")
    selfcheck.add_argument(
        "--automaton", choices=("file", "stress"), default="file",
        help="type-state property automaton (typestate only)",
    )
    selfcheck.add_argument(
        "--site", help="tracked allocation site (typestate only; default: first)"
    )
    selfcheck.add_argument(
        "--max-violations", type=int, default=10, metavar="N",
        help="stop after reporting N violations per check",
    )
    selfcheck.set_defaults(func=_cmd_selfcheck)

    info = commands.add_parser("info", help="print one benchmark's statistics")
    info.add_argument("name")
    info.set_defaults(func=_cmd_info)

    serve = commands.add_parser(
        "serve",
        help="run the resident analysis daemon (JSON over a unix socket; "
             "see docs/SERVING.md)",
    )
    serve.add_argument("--socket", required=True, metavar="PATH",
                       help="unix socket to listen on")
    serve.add_argument(
        "--store", metavar="FILE",
        help="persistent cross-run knowledge store (warm-starts repeat "
             "submissions, survives restarts)",
    )
    serve.add_argument("--k", type=_beam, default=5, metavar="K")
    serve.add_argument("--max-iterations", type=int, default=60)
    serve.add_argument(
        "--engine", choices=("interpreted", "compiled"),
        default="interpreted",
    )
    serve.add_argument(
        "--max-seconds", type=float, default=None, metavar="S",
        help="per-request wall-clock ceiling (requests may tighten it, "
             "never exceed it)",
    )
    serve.add_argument(
        "--max-steps", type=int, default=None, metavar="N",
        help="per-request solver step ceiling",
    )
    serve.add_argument(
        "--trace-out", metavar="FILE",
        help="record a JSONL trace of every served request",
    )
    serve.add_argument(
        "--metrics-out", metavar="FILE",
        help="periodically write a Prometheus text-format snapshot of "
             "the metrics registry to FILE (atomic replace)",
    )
    serve.add_argument(
        "--metrics-interval", type=float, default=5.0, metavar="S",
        help="seconds between --metrics-out snapshots (default: 5)",
    )
    serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="supervised worker processes for solve ops (crashes are "
             "isolated and workers respawned; 0 = solve inline in the "
             "daemon process; default: 1)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=16, metavar="N",
        help="admission queue bound; arrivals beyond it are shed with "
             "a retryable 'overloaded' error (default: 16)",
    )
    serve.add_argument(
        "--max-deadline-ms", type=float, default=None, metavar="MS",
        help="ceiling on client deadline_ms (requests may tighten it, "
             "never exceed it)",
    )
    serve.add_argument(
        "--request-timeout", type=float, default=None, metavar="S",
        help="per-request wall-clock limit in the worker pool; a "
             "request past it fails 'worker_timeout' and the worker "
             "is respawned",
    )
    serve.add_argument(
        "--max-request-bytes", type=int, default=8 * 1024 * 1024,
        metavar="N",
        help="largest accepted request line; longer ones are answered "
             "with an 'oversized' error (default: 8MiB)",
    )
    serve.add_argument(
        "--compact-ratio", type=float, default=None, metavar="R",
        help="compact the store when the superseded-entry ratio "
             "reaches R (0..1; default: never)",
    )
    serve.add_argument(
        "--compact-min-entries", type=int, default=16, metavar="N",
        help="skip periodic compaction below N on-file entries "
             "(default: 16)",
    )
    serve.add_argument(
        "--inject", action="append", metavar="SPEC",
        help="chaos-testing fault spec site:action[:k=v,...] "
             "(repeatable; see docs/ROBUSTNESS.md)",
    )
    serve.set_defaults(func=_cmd_serve)

    top = commands.add_parser(
        "top",
        help="live dashboard over a running daemon (QPS, tier mix, "
             "latency quantiles, in-flight request) or over a lease "
             "log (--leases: task states, steals, worker liveness)",
    )
    top.add_argument("--socket", metavar="PATH")
    top.add_argument(
        "--leases", metavar="FILE",
        help="watch a lease log (checkpoint.leases) instead of a daemon",
    )
    top.add_argument(
        "--lease-ttl", type=float, default=5.0, metavar="S",
        help="TTL used to call a watched lease expired (default: 5)",
    )
    top.add_argument(
        "--interval", type=float, default=2.0, metavar="S",
        help="seconds between polls (default: 2)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="render one snapshot frame and exit (non-interactive)",
    )
    top.add_argument(
        "--frames", type=int, default=None, metavar="N",
        help="stop after N frames (default: run until interrupted)",
    )
    top.add_argument(
        "--no-clear", action="store_true",
        help="append frames instead of clearing the screen",
    )
    top.set_defaults(func=_cmd_top)

    submit = commands.add_parser(
        "submit",
        help="submit work to a running 'repro serve' daemon",
    )
    submit.add_argument("--socket", required=True, metavar="PATH")
    submit.add_argument("file", nargs="?",
                        help="program file to solve (omit for --ping/--stats/"
                             "--shutdown/--benchmark)")
    submit.add_argument("--ping", action="store_true")
    submit.add_argument("--stats", action="store_true")
    submit.add_argument("--metrics", action="store_true",
                        help="print a Prometheus text scrape and exit")
    submit.add_argument("--shutdown", action="store_true")
    submit.add_argument("--benchmark", metavar="NAME",
                        help="solve a bundled suite benchmark on the daemon")
    submit.add_argument("--analysis", default="typestate",
                        help="analysis for --benchmark (default: typestate)")
    submit.add_argument(
        "--kind", choices=("typestate", "escape", "provenance"),
        default="typestate", help="analysis kind for a program file",
    )
    submit.add_argument("--query", help="observe label to check")
    submit.add_argument("--allowed", default="",
                        help="comma-separated allowed type-states/sites")
    submit.add_argument("--automaton", choices=("file", "stress"),
                        default="file")
    submit.add_argument("--site", help="tracked allocation site (typestate)")
    submit.add_argument("--var", help="variable (escape/provenance)")
    submit.add_argument("--max-seconds", type=float, default=None, metavar="S")
    submit.add_argument("--max-steps", type=int, default=None, metavar="N")
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="client-side reply timeout in seconds")
    submit.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="client retries on transport failures and retryable "
             "daemon errors, same request id each attempt (default: 2)",
    )
    submit.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="shed the request server-side if it is still queued when "
             "this many milliseconds have passed",
    )
    submit.set_defaults(func=_cmd_submit)

    store = commands.add_parser(
        "store",
        help="inspect and maintain a knowledge store file offline",
    )
    store_commands = store.add_subparsers(dest="store_command",
                                          required=True)
    store_compact = store_commands.add_parser(
        "compact",
        help="rewrite the store keeping latest-wins survivors "
             "(atomic rename; crash-safe at any instant)",
    )
    store_compact.add_argument("file", help="knowledge store JSONL file")
    store_compact.set_defaults(func=_cmd_store)
    store_verify = store_commands.add_parser(
        "verify",
        help="check header version, record structure, and per-entry "
             "content checksums",
    )
    store_verify.add_argument("file", help="knowledge store JSONL file")
    store_verify.set_defaults(func=_cmd_store)
    store_stats = store_commands.add_parser(
        "stats",
        help="print size, live/superseded entry counts, and the "
             "superseded ratio",
    )
    store_stats.add_argument("file", help="knowledge store JSONL file")
    store_stats.set_defaults(func=_cmd_store)

    trace = commands.add_parser(
        "trace", help="validate, summarize, or replay a recorded JSONL trace"
    )
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)

    validate = trace_commands.add_parser(
        "validate", help="check a trace file against the event schema"
    )
    validate.add_argument("file")
    validate.set_defaults(func=_cmd_trace_validate)

    summarize = trace_commands.add_parser(
        "summarize",
        help="per-phase wall-clock breakdown (forward / backward / synthesis)",
    )
    summarize.add_argument(
        "files", nargs="+", metavar="FILE",
        help="trace file(s); multiple files are merged deterministically",
    )
    summarize.set_defaults(func=_cmd_trace_summarize)

    profile = trace_commands.add_parser(
        "profile",
        help="per-site self/total wall-clock flat profile",
    )
    profile.add_argument(
        "files", nargs="+", metavar="FILE",
        help="trace file(s); multiple files are merged deterministically",
    )
    profile.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="show only the N hottest sites",
    )
    profile.add_argument(
        "--by-trace", action="store_true",
        help="add a per-trace-id (per-request / per-unit) roll-up",
    )
    profile.set_defaults(func=_cmd_trace_profile)

    transcript = trace_commands.add_parser(
        "transcript",
        help="rebuild a Figure-1 style transcript from a detail trace",
    )
    transcript.add_argument("file")
    transcript.add_argument(
        "--query", help="which query to narrate (required for multi-query traces)"
    )
    transcript.set_defaults(func=_cmd_trace_transcript)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
