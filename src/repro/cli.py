"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``solve-typestate FILE`` — resolve a type-state query on a program
  written in the text syntax of :mod:`repro.lang.parser`;
* ``solve-escape FILE`` — resolve a thread-escape (object locality)
  query on such a program;
* ``eval`` — run the paper's full evaluation (Tables 1-4, Figures
  12-14) on the synthetic benchmark suite;
* ``info NAME`` — print one benchmark's Table 1 row and query counts;
* ``trace validate|summarize|transcript FILE`` — work with recorded
  JSONL traces (see ``--trace-out`` and ``docs/OBSERVABILITY.md``).

Variable/site/field universes are inferred from the program text, so a
minimal invocation is just::

    python -m repro solve-typestate prog.rp --query check1 --allowed closed
    python -m repro solve-escape prog.rp --query pc --var u

Every solver accepts ``--trace-out FILE`` (record a structured JSONL
trace of the search) and ``--progress`` (live per-iteration feed on
stderr); ``eval`` accepts the same and merges worker traces
deterministically under ``--jobs``.

Robustness flags (see ``docs/ROBUSTNESS.md``): solvers take
``--max-seconds`` / ``--max-steps`` (cooperative budgets resolving
overruns as UNRESOLVED), ``--lenient`` (contain client errors), and
``--inject`` (deterministic fault injection); ``eval`` adds
``--retries`` / ``--unit-timeout`` (crash-surviving worker pool) and
``--checkpoint`` / ``--resume`` (JSONL checkpoint of completed units).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.narrate import narrate, transcript_from_events
from repro.core.stats import QueryStatus
from repro.core.tracer import ForwardRunCache, Tracer, TracerConfig
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs
from repro.obs.events import SCHEMA_VERSION
from repro.obs.sinks import JsonlSink, MultiSink, Sink, TtySink
from repro.obs.summarize import (
    load_trace,
    render_summary,
    summarize_trace,
    validate_trace,
)
from repro.escape.client import EscapeClient, EscapeQuery
from repro.escape.domain import EscSchema
from repro.lang.parser import parse_program
from repro.lang.universe import collect_universe
from repro.provenance.client import ProvenanceClient, ProvenanceQuery
from repro.provenance.domain import PtSchema
from repro.typestate.automaton import file_automaton, stress_automaton
from repro.typestate.client import TypestateClient, TypestateQuery


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--k", type=_beam, default=5, metavar="K",
                        help="beam width of the meta-analysis; 'none' disables it")
    parser.add_argument("--max-iterations", type=int, default=60)
    parser.add_argument("--narrate", action="store_true",
                        help="print the full Figure-1 style transcript")
    _add_robust(parser)
    _add_obs(parser)


def _add_robust(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--max-seconds", type=float, default=None, metavar="S",
        help="per-query wall-clock budget; overruns resolve as UNRESOLVED",
    )
    parser.add_argument(
        "--max-steps", type=int, default=None, metavar="N",
        help="per-query solver step budget (worklist iterations + backward "
             "commands); overruns resolve as UNRESOLVED",
    )
    parser.add_argument(
        "--lenient", action="store_true",
        help="contain unexpected client errors to the failing query "
             "instead of crashing the solve",
    )
    parser.add_argument(
        "--inject", action="append", default=[], metavar="SITE:ACTION[:K=V,..]",
        help="deterministic fault injection for robustness testing, e.g. "
             "'backward:raise:error=explosion' or 'forward_run:delay:delay=0.1' "
             "(repeatable; see docs/ROBUSTNESS.md)",
    )


def _add_obs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", metavar="FILE",
        help="record a structured JSONL trace of the search to FILE",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print live per-iteration progress to stderr",
    )


def _build_sink(args) -> Optional[Sink]:
    """Combine the sinks requested on the command line (or ``None``)."""
    sinks: List[Sink] = []
    if getattr(args, "trace_out", None):
        sinks.append(JsonlSink(args.trace_out))
    if getattr(args, "progress", False):
        sinks.append(TtySink(sys.stderr))
    if not sinks:
        return None
    return sinks[0] if len(sinks) == 1 else MultiSink(sinks)


def _beam(text: str) -> Optional[int]:
    if text.lower() in ("none", "all", "off"):
        return None
    return int(text)


def _config(args) -> TracerConfig:
    return TracerConfig(
        k=args.k,
        max_iterations=args.max_iterations,
        max_seconds=getattr(args, "max_seconds", None),
        max_steps=getattr(args, "max_steps", None),
        strict=not getattr(args, "lenient", False),
    )


def _fault_plan(args):
    """Build the ``--inject`` fault plan, or ``None``."""
    specs = getattr(args, "inject", None) or []
    if not specs:
        return None
    from repro.robust.faults import FaultPlan

    try:
        return FaultPlan.from_specs(specs)
    except ValueError as error:
        _die(str(error))


def _report(client, query, args) -> int:
    from repro.robust.faults import fault_scope

    with fault_scope(_fault_plan(args)):
        return _report_inner(client, query, args)


def _report_inner(client, query, args) -> int:
    sink = _build_sink(args)
    if args.narrate:
        # narrate installs its own detail-tracing context and forwards
        # the event stream to the extra sink, so --trace-out traces
        # carry the full per-iteration detail payloads.
        transcript = narrate(client, query, _config(args), sink=sink)
        print(transcript.render())
        status = transcript.status
        abstraction = transcript.abstraction
        iterations = len(transcript.iterations)
    else:
        record = _solve_traced(client, query, args, sink)
        status = record.status
        abstraction = record.abstraction
        iterations = record.iterations
        if status is QueryStatus.PROVEN:
            shown = "{" + ", ".join(sorted(abstraction)) + "}"
            print(f"PROVEN with cheapest abstraction {shown} "
                  f"({iterations} iterations)")
        elif status is QueryStatus.IMPOSSIBLE:
            print(f"IMPOSSIBLE: no abstraction in the family proves the "
                  f"query ({iterations} iterations)")
        else:
            print(f"UNRESOLVED after {iterations} iterations")
    return 0 if status is not QueryStatus.EXHAUSTED else 1


def _solve_traced(client, query, args, sink: Optional[Sink]):
    config = _config(args)
    if sink is None:
        return Tracer(client, config).solve(query)
    # Own the forward-run cache so it outlives the solve: the metrics
    # registry holds weak references, and a driver-local cache would be
    # collected before the closing snapshot below.
    cache = (
        ForwardRunCache(config.forward_cache_size)
        if config.forward_cache_size
        else None
    )
    with obs.tracing(sink, detail=bool(args.trace_out)):
        record = Tracer(client, config, forward_cache=cache).solve(query)
        # Close the trace with one metric record per registered cache
        # (the client's caches registered on construction, before this
        # function ran, so read the ambient registry — not a scoped one).
        for name, counters in sorted(
            obs_metrics.current_registry().snapshot().items()
        ):
            obs.metric(name, counters.hits, counters.misses)
    return record


def _cmd_solve_typestate(args) -> int:
    with open(args.file) as handle:
        program = parse_program(handle.read())
    universe = collect_universe(program)
    if args.query not in universe.observe_labels:
        _die(f"no 'observe {args.query}' in the program "
             f"(labels: {sorted(universe.observe_labels)})")
    if args.automaton == "file":
        automaton = file_automaton()
    else:
        if not universe.methods:
            _die("stress automaton needs at least one method call in the program")
        automaton = stress_automaton(sorted(universe.methods))
    site = args.site or (sorted(universe.sites)[0] if universe.sites else None)
    if site is None:
        _die("the program allocates nothing; pass --site explicitly")
    allowed = frozenset(args.allowed.split(","))
    unknown = allowed - automaton.states
    if unknown:
        _die(f"unknown type-states {sorted(unknown)}; "
             f"automaton has {sorted(automaton.states)}")
    client = TypestateClient(
        program, automaton, site, universe.variables
    )
    print(f"tracking site {site} with the {automaton.name} automaton; "
          f"{len(universe.variables)} variables (2^{len(universe.variables)} abstractions)")
    return _report(client, TypestateQuery(args.query, allowed), args)


def _cmd_solve_escape(args) -> int:
    with open(args.file) as handle:
        program = parse_program(handle.read())
    universe = collect_universe(program)
    if args.query not in universe.observe_labels:
        _die(f"no 'observe {args.query}' in the program "
             f"(labels: {sorted(universe.observe_labels)})")
    if args.var not in universe.variables:
        _die(f"unknown variable {args.var!r} "
             f"(variables: {sorted(universe.variables)})")
    schema = EscSchema(sorted(universe.variables), sorted(universe.fields))
    client = EscapeClient(program, schema, universe.sites)
    print(f"{len(universe.sites)} allocation sites "
          f"(2^{len(universe.sites)} abstractions)")
    return _report(client, EscapeQuery(args.query, args.var), args)


def _cmd_solve_provenance(args) -> int:
    with open(args.file) as handle:
        program = parse_program(handle.read())
    universe = collect_universe(program)
    if args.query not in universe.observe_labels:
        _die(f"no 'observe {args.query}' in the program "
             f"(labels: {sorted(universe.observe_labels)})")
    if args.var not in universe.variables:
        _die(f"unknown variable {args.var!r} "
             f"(variables: {sorted(universe.variables)})")
    if args.allowed:
        allowed = frozenset(args.allowed.split(","))
        unknown = allowed - universe.sites
        if unknown:
            _die(f"unknown sites {sorted(unknown)} "
                 f"(sites: {sorted(universe.sites)})")
    else:
        allowed = universe.sites
    client = ProvenanceClient(program, PtSchema(universe.variables), universe.sites)
    print(f"{len(universe.sites)} allocation sites "
          f"(2^{len(universe.sites)} abstractions); "
          f"allowed: {sorted(allowed)}")
    return _report(client, ProvenanceQuery(args.query, args.var, allowed), args)


def _cmd_eval(args) -> int:
    from repro.bench.parallel import RunOptions
    from repro.bench.report import SMALLEST, full_report
    from repro.bench.suite import BENCHMARK_NAMES
    from repro.robust.faults import fault_scope
    from repro.robust.pool import RetryPolicy

    names = SMALLEST if args.quick else BENCHMARK_NAMES
    if args.resume and not args.checkpoint:
        _die("--resume needs --checkpoint FILE to resume from")
    plan = _fault_plan(args)
    options = RunOptions(
        retry=RetryPolicy(
            max_attempts=args.retries, unit_timeout=args.unit_timeout
        ),
        checkpoint_path=args.checkpoint,
        resume=args.resume,
        fault_plan=plan,
    )

    def run():
        # With worker processes the plan ships inside ``options``; on
        # the serial path it installs ambiently around the whole run.
        with fault_scope(plan if args.jobs <= 1 else None):
            return full_report(
                names=names, k=args.k, jobs=args.jobs, options=options
            )

    sink = _build_sink(args)
    if sink is None:
        results = run()
    else:
        # One ambient context around the whole evaluation: the serial
        # harness emits into it directly; the parallel harness collects
        # worker streams and replays them here in work-unit order.
        with obs.tracing(sink):
            results = run()
    if args.json:
        from repro.bench.export import export_json

        export_json(results, args.json)
        print(f"wrote {args.json}")
    return 0


def _cmd_trace_validate(args) -> int:
    records = _load_trace_or_die(args.file)
    errors = validate_trace(records)
    if errors:
        for error in errors:
            print(f"invalid: {error}", file=sys.stderr)
        return 1
    print(f"OK: {len(records)} records, schema version {SCHEMA_VERSION}")
    return 0


def _cmd_trace_summarize(args) -> int:
    records = _load_trace_or_die(args.file)
    errors = validate_trace(records)
    if errors:
        for error in errors:
            print(f"invalid: {error}", file=sys.stderr)
        return 1
    print(render_summary(summarize_trace(records)))
    return 0


def _cmd_trace_transcript(args) -> int:
    records = _load_trace_or_die(args.file)
    try:
        transcript = transcript_from_events(records, query=args.query)
    except ValueError as error:
        _die(str(error))
    print(transcript.render())
    return 0


def _load_trace_or_die(path: str) -> List[dict]:
    try:
        return load_trace(path)
    except (OSError, ValueError) as error:
        _die(str(error))


def _cmd_info(args) -> int:
    from repro.bench.harness import escape_setup, prepare, typestate_setup
    from repro.bench.tables import render_table1

    bench = prepare(args.name)
    print(render_table1([bench.metrics]))
    _client, escape_queries = escape_setup(bench)
    typestate_queries = sum(len(qs) for _c, qs in typestate_setup(bench))
    print(f"\nqueries: {typestate_queries} type-state, {len(escape_queries)} thread-escape")
    print(f"recursion cuts during inlining: {bench.inlined.recursion_cuts}")
    return 0


def _die(message: str) -> None:
    raise SystemExit(f"error: {message}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    typestate = commands.add_parser(
        "solve-typestate", help="resolve a type-state query on a program file"
    )
    typestate.add_argument("file")
    typestate.add_argument("--query", required=True, help="observe label to check")
    typestate.add_argument(
        "--allowed", default="closed",
        help="comma-separated type-states allowed at the query (default: closed)",
    )
    typestate.add_argument(
        "--automaton", choices=("file", "stress"), default="file"
    )
    typestate.add_argument("--site", help="tracked allocation site (default: first)")
    _add_common(typestate)
    typestate.set_defaults(func=_cmd_solve_typestate)

    escape = commands.add_parser(
        "solve-escape", help="resolve an object-locality query on a program file"
    )
    escape.add_argument("file")
    escape.add_argument("--query", required=True, help="observe label to check")
    escape.add_argument("--var", required=True, help="variable whose locality to prove")
    _add_common(escape)
    escape.set_defaults(func=_cmd_solve_escape)

    provenance = commands.add_parser(
        "solve-provenance",
        help="resolve an allocation-site provenance query on a program file",
    )
    provenance.add_argument("file")
    provenance.add_argument("--query", required=True, help="observe label to check")
    provenance.add_argument("--var", required=True, help="variable whose provenance to prove")
    provenance.add_argument(
        "--allowed",
        default="",
        help="comma-separated allowed allocation sites (default: all)",
    )
    _add_common(provenance)
    provenance.set_defaults(func=_cmd_solve_provenance)

    evaluation = commands.add_parser(
        "eval", help="run the paper's full evaluation on the synthetic suite"
    )
    evaluation.add_argument(
        "--quick", action="store_true", help="only the 4 smallest benchmarks"
    )
    evaluation.add_argument("--k", type=_beam, default=5, metavar="K")
    evaluation.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan independent workloads across N worker processes",
    )
    evaluation.add_argument(
        "--json", metavar="PATH", help="also write results as JSON"
    )
    evaluation.add_argument(
        "--retries", type=int, default=3, metavar="N",
        help="attempts per work unit before it is recorded as failed "
             "(crashed workers are respawned between attempts)",
    )
    evaluation.add_argument(
        "--unit-timeout", type=float, default=None, metavar="S",
        help="wall-clock allowance per work-unit attempt under --jobs",
    )
    evaluation.add_argument(
        "--checkpoint", metavar="FILE",
        help="append completed work units to a JSONL checkpoint",
    )
    evaluation.add_argument(
        "--resume", action="store_true",
        help="load the --checkpoint file and run only unfinished units",
    )
    evaluation.add_argument(
        "--inject", action="append", default=[], metavar="SITE:ACTION[:K=V,..]",
        help="deterministic fault injection (repeatable; see docs/ROBUSTNESS.md)",
    )
    _add_obs(evaluation)
    evaluation.set_defaults(func=_cmd_eval)

    info = commands.add_parser("info", help="print one benchmark's statistics")
    info.add_argument("name")
    info.set_defaults(func=_cmd_info)

    trace = commands.add_parser(
        "trace", help="validate, summarize, or replay a recorded JSONL trace"
    )
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)

    validate = trace_commands.add_parser(
        "validate", help="check a trace file against the event schema"
    )
    validate.add_argument("file")
    validate.set_defaults(func=_cmd_trace_validate)

    summarize = trace_commands.add_parser(
        "summarize",
        help="per-phase wall-clock breakdown (forward / backward / synthesis)",
    )
    summarize.add_argument("file")
    summarize.set_defaults(func=_cmd_trace_summarize)

    transcript = trace_commands.add_parser(
        "transcript",
        help="rebuild a Figure-1 style transcript from a detail trace",
    )
    transcript.add_argument("file")
    transcript.add_argument(
        "--query", help="which query to narrate (required for multi-query traces)"
    )
    transcript.set_defaults(func=_cmd_trace_transcript)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
