"""Bitset codec for the type-state domain.

Layout: one ``("err",)`` bit (set exactly on ``TOP``, which encodes as
the error bit alone), one bit per automaton state for type-state
membership, and one bit per variable of the *parameter universe* for
must-alias membership.  The must-alias set is always a subset of the
universe — ``Restart`` intersects with ``p`` and ``Assign`` guards on
``TsParam(lhs)``, and ``p`` ranges over subsets of the universe — so
variables outside the layout provably read ``False``
(:meth:`TypestateCodec.missing_read`) and writes to them are safe
exactly when they provably store ``False`` under the bound abstraction.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

from repro.core.semantics import BoolExpr, Const, Updates
from repro.dataflow.bitset import (
    BitsetLayout,
    KernelFallback,
    StateCodec,
    bool_group,
)
from repro.typestate.analysis import GoTop, Restart
from repro.typestate.automaton import TypestateAutomaton
from repro.typestate.domain import TOP, TsState, TsTop

__all__ = ["TypestateCodec"]


class TypestateCodec(StateCodec):
    """Encodes ``TsState``/``TOP`` over a fixed automaton + universe."""

    __slots__ = ("_automaton", "_universe", "_err_bit", "_type_bit", "_var_bit")

    def __init__(self, automaton: TypestateAutomaton, universe: Iterable[str]):
        states = tuple(sorted(automaton.states))
        variables = tuple(sorted(universe))
        specs = [bool_group(("err",))]
        specs.extend(bool_group(("type", s)) for s in states)
        specs.extend(bool_group(("var", v)) for v in variables)
        super().__init__(BitsetLayout(specs))
        self._automaton = automaton
        self._universe = frozenset(variables)
        layout = self.layout
        self._err_bit = layout.group(("err",)).mask
        self._type_bit = {s: layout.group(("type", s)).mask for s in states}
        self._var_bit = {v: layout.group(("var", v)).mask for v in variables}

    def encode_state(self, state) -> int:
        if isinstance(state, TsTop):
            return self._err_bit
        bits = 0
        type_bit = self._type_bit
        for s in state.ts:
            bits |= type_bit[s]  # KeyError: state outside the automaton
        var_bit = self._var_bit
        for v in state.vs:
            bits |= var_bit[v]  # KeyError: alias outside the universe
        return bits

    def decode_state(self, bits: int):
        if bits & self._err_bit:
            return TOP
        ts = frozenset(s for s, bit in self._type_bit.items() if bits & bit)
        vs = frozenset(v for v, bit in self._var_bit.items() if bits & bit)
        return TsState(ts, vs)

    def missing_read(self, location):
        if location[0] == "var":
            # Must-alias sets stay inside the parameter universe.
            return False
        raise KernelFallback(f"read of location outside layout: {location!r}")

    def narrow_key(self, p: FrozenSet[str]):
        """Under ``p`` every reachable must-alias set stays inside
        ``p``: ``Restart`` stores ``{lhs} & p``, ``Assign`` guards its
        var write on ``TsParam(lhs)``, the drop rows clear, and event
        rows touch only type/err bits — so var bits outside ``p`` are
        dead and the layout shrinks to the footprint."""
        key = frozenset(p) & self._universe
        return None if key == self._universe else key

    def narrow(self, p: FrozenSet[str]) -> "TypestateCodec":
        return TypestateCodec(self._automaton, frozenset(p) & self._universe)

    def safe_effect(self, effect, binding, p: FrozenSet[str]) -> bool:
        if isinstance(effect, GoTop):
            return True
        if isinstance(effect, Restart):
            # The only outside-layout write is ``("var", lhs)``; it
            # stores ``lhs in p``, which is False for any variable the
            # universe (and hence ``p``) does not contain.
            return ("var", effect.lhs) in self.layout or effect.lhs not in p
        if isinstance(effect, Updates):
            for location, expr in effect.writes:
                if location in self.layout:
                    continue
                if location[0] != "var":
                    return False
                if isinstance(expr, Const) and not expr.value:
                    continue
                if (
                    isinstance(expr, BoolExpr)
                    and binding.bind_formula(expr.formula, p) is False
                ):
                    continue
                return False
            return True
        return False
