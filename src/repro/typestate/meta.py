"""Backward meta-analysis for the type-state analysis (Figures 9, 10).

Primitive formulas over pairs ``(p, d)``:

* ``TsErr``      — ``d = TOP``;
* ``TsParam(x)`` — ``x in p`` (a parameter primitive);
* ``TsVar(x)``   — ``d = (ts, vs)`` and ``x in vs``;
* ``TsType(s)``  — ``d = (ts, vs)`` and ``s in ts``.

The Figure 10 weakest preconditions are no longer transcribed here:
the forward case tables in :mod:`repro.typestate.analysis` are the
single source of truth and :class:`TypestateMeta` delegates to the
generic guard-by-guard derivation of :mod:`repro.core.semantics`.
For a uniform automaton (``strong = weak``) the derived formulas
canonicalise to the figure exactly — e.g. for an event ``x.m()``::

    wp(err)    = err | \\/ {type(s) | [[m]](s) = TOP}
    wp(var(z)) = var(z) & /\\ {!type(s) | [[m]](s) = TOP}

— and every derivation is property-tested against a brute-force
weakest precondition (requirement (2) of Section 4) in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.formula import Formula, Literal, Primitive
from repro.core.meta import BackwardMetaAnalysis
from repro.core.viability import ParamTheory
from repro.lang.ast import AtomicCommand
from repro.typestate.domain import TsState, TsTop


@dataclass(frozen=True)
class TsErr(Primitive):
    """``d = TOP``."""

    def __str__(self) -> str:
        return "err"


@dataclass(frozen=True)
class TsParam(Primitive):
    """``x in p``."""

    var: str

    def __str__(self) -> str:
        return f"param({self.var})"


@dataclass(frozen=True)
class TsVar(Primitive):
    """``x in vs`` (implies ``d != TOP``)."""

    var: str

    def __str__(self) -> str:
        return f"var({self.var})"


@dataclass(frozen=True)
class TsType(Primitive):
    """``s in ts`` (implies ``d != TOP``)."""

    state: str

    def __str__(self) -> str:
        return f"type({self.state})"


ERR = TsErr()


class TypestateTheory(ParamTheory):
    """Semantics of the type-state primitives (Figure 9).

    Beyond literal equality, the theory knows that positive ``var``
    and ``type`` primitives exclude ``TOP`` while ``err`` asserts it;
    cubes are normalised accordingly.
    """

    def holds(self, prim: Primitive, p, d) -> bool:
        if isinstance(prim, TsErr):
            return isinstance(d, TsTop)
        if isinstance(prim, TsParam):
            return prim.var in p
        if isinstance(prim, TsVar):
            return isinstance(d, TsState) and prim.var in d.vs
        if isinstance(prim, TsType):
            return isinstance(d, TsState) and prim.state in d.ts
        raise TypeError(f"not a type-state primitive: {prim!r}")

    def is_param(self, prim: Primitive) -> bool:
        return isinstance(prim, TsParam)

    def param_var(self, prim: Primitive) -> Tuple[str, bool]:
        assert isinstance(prim, TsParam)
        return (prim.var, True)

    def lit_entails(self, a: Literal, b: Literal) -> bool:
        if a == b:
            return True
        # var(x)+ and type(s)+ entail !err; err+ entails !var, !type.
        if a.positive and isinstance(a.prim, (TsVar, TsType)):
            if not b.positive and isinstance(b.prim, TsErr):
                return True
        if a.positive and isinstance(a.prim, TsErr):
            if not b.positive and isinstance(b.prim, (TsVar, TsType)):
                return True
        return False

    def cube_entails_literal(self, stronger, b: Literal) -> bool:
        if b in stronger:
            return True
        if b.positive:
            return False  # positive literals only entail themselves
        if isinstance(b.prim, (TsVar, TsType)):
            return Literal(ERR, True) in stronger
        if isinstance(b.prim, TsErr):
            return any(
                a.positive and isinstance(a.prim, (TsVar, TsType))
                for a in stronger
            )
        return False

    def normalize_cube(self, literals) -> Optional[frozenset]:
        for l in literals:
            if l.negate() in literals:
                return None
        has_err = Literal(ERR, True) in literals
        has_nonerr_fact = any(
            l.positive and isinstance(l.prim, (TsVar, TsType)) for l in literals
        )
        if has_err and has_nonerr_fact:
            return None
        out = set(literals)
        if has_err:
            # err makes every negative var/type literal redundant.
            out = {
                l
                for l in out
                if l.positive or not isinstance(l.prim, (TsVar, TsType))
            }
        if has_nonerr_fact:
            out.discard(Literal(ERR, False))
        return frozenset(out)


class TypestateMeta(BackwardMetaAnalysis):
    """Backward weakest preconditions on primitives (Figure 10),
    derived from the forward case tables (requirement (2) by
    construction)."""

    metrics_name = "typestate"

    def __init__(self, analysis):
        self.analysis = analysis
        self.theory = analysis.semantics.binding.theory

    def wp_primitive(self, command: AtomicCommand, prim: Primitive) -> Formula:
        return self.analysis.semantics.wp_primitive(command, prim)
