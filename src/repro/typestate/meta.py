"""Backward meta-analysis for the type-state analysis (Figures 9, 10).

Primitive formulas over pairs ``(p, d)``:

* ``TsErr``      — ``d = TOP``;
* ``TsParam(x)`` — ``x in p`` (a parameter primitive);
* ``TsVar(x)``   — ``d = (ts, vs)`` and ``x in vs``;
* ``TsType(s)``  — ``d = (ts, vs)`` and ``s in ts``.

The weakest preconditions below follow Figure 10, generalised to the
strong/weak transition tables that also express the paper's fictitious
stress property.  For a uniform automaton (``strong = weak``) the
formulas specialise to the figure exactly — e.g. for an event
``x.m()``::

    wp(err)    = err | \\/ {type(s) | [[m]](s) = TOP}
    wp(var(z)) = var(z) & /\\ {!type(s) | [[m]](s) = TOP}
    wp(type(s)) = !err & /\\ {!type(s') | [[m]](s') = TOP}
                  & ((!var(x) & type(s)) | \\/ {type(s') | [[m]](s') = s})

Each ``wp_primitive`` is property-tested against a brute-force weakest
precondition (requirement (2) of Section 4) in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from repro.core.formula import (
    FALSE,
    Formula,
    Literal,
    Primitive,
    TRUE,
    conj,
    disj,
    lit,
    nlit,
)
from repro.core.meta import BackwardMetaAnalysis
from repro.core.viability import ParamTheory
from repro.lang.ast import (
    Assign,
    AssignNull,
    AtomicCommand,
    Invoke,
    LoadField,
    LoadGlobal,
    New,
    Observe,
    StoreField,
    StoreGlobal,
    ThreadStart,
)
from repro.typestate.analysis import TypestateAnalysis
from repro.typestate.domain import TsState, TsTop


@dataclass(frozen=True)
class TsErr(Primitive):
    """``d = TOP``."""

    def __str__(self) -> str:
        return "err"


@dataclass(frozen=True)
class TsParam(Primitive):
    """``x in p``."""

    var: str

    def __str__(self) -> str:
        return f"param({self.var})"


@dataclass(frozen=True)
class TsVar(Primitive):
    """``x in vs`` (implies ``d != TOP``)."""

    var: str

    def __str__(self) -> str:
        return f"var({self.var})"


@dataclass(frozen=True)
class TsType(Primitive):
    """``s in ts`` (implies ``d != TOP``)."""

    state: str

    def __str__(self) -> str:
        return f"type({self.state})"


ERR = TsErr()


class TypestateTheory(ParamTheory):
    """Semantics of the type-state primitives (Figure 9).

    Beyond literal equality, the theory knows that positive ``var``
    and ``type`` primitives exclude ``TOP`` while ``err`` asserts it;
    cubes are normalised accordingly.
    """

    def holds(self, prim: Primitive, p, d) -> bool:
        if isinstance(prim, TsErr):
            return isinstance(d, TsTop)
        if isinstance(prim, TsParam):
            return prim.var in p
        if isinstance(prim, TsVar):
            return isinstance(d, TsState) and prim.var in d.vs
        if isinstance(prim, TsType):
            return isinstance(d, TsState) and prim.state in d.ts
        raise TypeError(f"not a type-state primitive: {prim!r}")

    def is_param(self, prim: Primitive) -> bool:
        return isinstance(prim, TsParam)

    def param_var(self, prim: Primitive) -> Tuple[str, bool]:
        assert isinstance(prim, TsParam)
        return (prim.var, True)

    def lit_entails(self, a: Literal, b: Literal) -> bool:
        if a == b:
            return True
        # var(x)+ and type(s)+ entail !err; err+ entails !var, !type.
        if a.positive and isinstance(a.prim, (TsVar, TsType)):
            if not b.positive and isinstance(b.prim, TsErr):
                return True
        if a.positive and isinstance(a.prim, TsErr):
            if not b.positive and isinstance(b.prim, (TsVar, TsType)):
                return True
        return False

    def cube_entails_literal(self, stronger, b: Literal) -> bool:
        if b in stronger:
            return True
        if b.positive:
            return False  # positive literals only entail themselves
        if isinstance(b.prim, (TsVar, TsType)):
            return Literal(ERR, True) in stronger
        if isinstance(b.prim, TsErr):
            return any(
                a.positive and isinstance(a.prim, (TsVar, TsType))
                for a in stronger
            )
        return False

    def normalize_cube(self, literals) -> Optional[frozenset]:
        for l in literals:
            if l.negate() in literals:
                return None
        has_err = Literal(ERR, True) in literals
        has_nonerr_fact = any(
            l.positive and isinstance(l.prim, (TsVar, TsType)) for l in literals
        )
        if has_err and has_nonerr_fact:
            return None
        out = set(literals)
        if has_err:
            # err makes every negative var/type literal redundant.
            out = {
                l
                for l in out
                if l.positive or not isinstance(l.prim, (TsVar, TsType))
            }
        if has_nonerr_fact:
            out.discard(Literal(ERR, False))
        return frozenset(out)


class TypestateMeta(BackwardMetaAnalysis):
    """Backward weakest preconditions on primitives (Figure 10)."""

    def __init__(self, analysis: TypestateAnalysis):
        self.analysis = analysis
        self.theory = TypestateTheory()

    def wp_primitive(self, command: AtomicCommand, prim: Primitive) -> Formula:
        if isinstance(prim, TsParam):
            return lit(prim)  # no command changes the abstraction
        if isinstance(command, New):
            if command.site == self.analysis.tracked_site:
                return self._wp_new_tracked(command, prim)
            return self._wp_unknown_assign(command.lhs, prim)
        if isinstance(command, Assign):
            return self._wp_copy(command, prim)
        if isinstance(command, (AssignNull, LoadField, LoadGlobal)):
            return self._wp_unknown_assign(command.lhs, prim)
        if isinstance(command, Invoke) and self.analysis.is_event(command):
            return self._wp_event(command, prim)
        if isinstance(
            command, (StoreField, StoreGlobal, ThreadStart, Observe, Invoke)
        ):
            return lit(prim)
        raise TypeError(f"unknown command: {command!r}")

    # -- non-event commands -------------------------------------------------

    def _wp_new_tracked(self, command: New, prim: Primitive) -> Formula:
        if isinstance(prim, TsErr):
            return lit(ERR)
        if isinstance(prim, TsVar):
            if prim.var == command.lhs:
                return conj(nlit(ERR), lit(TsParam(command.lhs)))
            return FALSE
        if isinstance(prim, TsType):
            return nlit(ERR) if prim.state == self.analysis.automaton.init else FALSE
        raise TypeError(prim)

    def _wp_copy(self, command: Assign, prim: Primitive) -> Formula:
        if isinstance(prim, TsVar) and prim.var == command.lhs:
            return conj(lit(TsParam(command.lhs)), lit(TsVar(command.rhs)))
        return lit(prim)

    def _wp_unknown_assign(self, lhs: str, prim: Primitive) -> Formula:
        if isinstance(prim, TsVar) and prim.var == lhs:
            return FALSE
        return lit(prim)

    # -- automaton events ---------------------------------------------------

    def _wp_event(self, command: Invoke, prim: Primitive) -> Formula:
        automaton = self.analysis.automaton
        method = command.method
        base = command.base
        strong_err = sorted(automaton.strong_error_states(method))
        weak_err = sorted(automaton.weak_error_states(method))
        no_strong_err = conj(*(nlit(TsType(s)) for s in strong_err))
        no_weak_err = conj(*(nlit(TsType(s)) for s in weak_err))
        if isinstance(prim, TsErr):
            strong_part = disj(*(lit(TsType(s)) for s in strong_err))
            weak_part = disj(*(lit(TsType(s)) for s in weak_err))
            if automaton.uniform:
                return disj(lit(ERR), strong_part)
            return disj(
                lit(ERR),
                conj(lit(TsVar(base)), strong_part),
                conj(nlit(TsVar(base)), weak_part),
            )
        if isinstance(prim, TsVar):
            if automaton.uniform:
                return conj(lit(prim), no_strong_err)
            return conj(
                lit(prim),
                disj(
                    conj(lit(TsVar(base)), no_strong_err),
                    conj(nlit(TsVar(base)), no_weak_err),
                ),
            )
        if isinstance(prim, TsType):
            strong_pre = disj(
                *(lit(TsType(s)) for s in sorted(automaton.strong_preimage(method, prim.state)))
            )
            weak_pre = disj(
                lit(prim),
                *(lit(TsType(s)) for s in sorted(automaton.weak_preimage(method, prim.state))),
            )
            if automaton.uniform:
                # (var(x) & A) | (!var(x) & (type(s) | A))
                #   == A | (!var(x) & type(s))   since A = strong_pre.
                return conj(
                    nlit(ERR),
                    no_strong_err,
                    disj(strong_pre, conj(nlit(TsVar(base)), lit(prim))),
                )
            return disj(
                conj(lit(TsVar(base)), no_strong_err, strong_pre),
                conj(nlit(TsVar(base)), nlit(ERR), no_weak_err, weak_pre),
            )
        raise TypeError(prim)
