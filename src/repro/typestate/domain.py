"""Abstract states of the type-state analysis (Figure 4).

``D = (2^T x 2^V) + {TOP}``: a non-error state records the possible
type-states ``ts`` of the tracked object and its must-alias set ``vs``;
``TOP`` records that a type-state error may have occurred.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Union


@dataclass(frozen=True)
class TsTop:
    """The error state ``TOP``."""

    def __str__(self) -> str:
        return "TOP"


TOP = TsTop()


@dataclass(frozen=True)
class TsState:
    """A non-error abstract state ``(ts, vs)``."""

    ts: FrozenSet[str]
    vs: FrozenSet[str]

    @staticmethod
    def make(ts: Iterable[str], vs: Iterable[str] = ()) -> "TsState":
        return TsState(frozenset(ts), frozenset(vs))

    def with_ts(self, ts: Iterable[str]) -> "TsState":
        return TsState(frozenset(ts), self.vs)

    def with_vs(self, vs: Iterable[str]) -> "TsState":
        return TsState(self.ts, frozenset(vs))

    def __str__(self) -> str:
        ts = "{" + ", ".join(sorted(self.ts)) + "}"
        vs = "{" + ", ".join(sorted(self.vs)) + "}"
        return f"({ts}, {vs})"

    def __repr__(self) -> str:
        # Canonical (sorted) — the dataclass default interpolates raw
        # frozensets, whose iteration order depends on insertion
        # history, and ``states_at`` sorts states by repr: equal states
        # must repr identically no matter which engine built them.
        return f"TsState{self}"


TsAbstract = Union[TsState, TsTop]
