"""TRACER client for the type-state analysis.

A query ``(pc, h)`` of Section 6 asks whether, at the program point
labelled ``pc``, every object allocated at site ``h`` that the receiver
may denote is in an *allowed* type-state.  The failure condition is::

    not(q) = err | \\/ {type(s) | s not allowed}

One :class:`TypestateClient` binds a program and a single tracked
allocation site; queries on different sites use different client
instances (their forward analyses track different objects).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.core.formula import Formula, disj, lit
from repro.core.selfcheck import sample_pairs, sample_subsets
from repro.core.tracer import TracerClient
from repro.dataflow.engines import ForwardResult, engine_for
from repro.lang.ast import Program
from repro.lang.cfg import Cfg, build_cfg
from repro.typestate.analysis import MayPoint, TypestateAnalysis
from repro.typestate.automaton import TypestateAutomaton
from repro.typestate.domain import TOP, TsState
from repro.typestate.kernel import TypestateCodec
from repro.typestate.meta import ERR, TsParam, TsType, TsVar, TypestateMeta


@dataclass(frozen=True)
class TypestateQuery:
    """Prove that at ``Observe(label)`` the tracked object's type-state
    is within ``allowed`` (and no error occurred)."""

    label: str
    allowed: FrozenSet[str]

    def __str__(self) -> str:
        return f"typestate:{self.label}"


class TypestateClient(TracerClient):
    """Binds program + automaton + tracked site into a TRACER client."""

    def __init__(
        self,
        program: Program,
        automaton: TypestateAutomaton,
        tracked_site: str,
        variables: FrozenSet[str],
        may_point: Optional[MayPoint] = None,
        event_labels: Optional[FrozenSet[str]] = None,
    ):
        self.program = program
        self.engine = engine_for(program)
        self.cfg: Optional[Cfg] = getattr(self.engine, "cfg", None)
        self.analysis = TypestateAnalysis(
            automaton, tracked_site, variables, may_point, event_labels
        )
        self.meta = TypestateMeta(self.analysis)

    def fail_condition(self, query: TypestateQuery) -> Formula:
        bad_states = sorted(self.analysis.automaton.states - query.allowed)
        return disj(lit(ERR), *(lit(TsType(s)) for s in bad_states))

    def cache_key(self):
        """Forward-run cache identity: the tracked site and automaton
        distinguish sibling clients of one benchmark; the base token
        distinguishes client instances (and hence programs)."""
        return (
            "typestate",
            self.analysis.tracked_site,
            self.analysis.automaton.name,
            TracerClient.cache_key(self),
        )

    def run_forward(self, p: FrozenSet[str]) -> ForwardResult:
        """One forward run of the ``p``-instantiated analysis."""
        return self.engine.run(
            self.analysis.semantics.bound_step(p),
            self.analysis.initial_state(),
        )

    def _kernel_codec(self):
        """Bitset layout for ``use_engine("compiled")``: the error
        flag, automaton-state bits, and one must-alias bit per
        parameter-universe variable."""
        return TypestateCodec(
            self.analysis.automaton, self.analysis.param_space.universe
        )

    def selfcheck_space(self):
        """Primitives and ``(p, d)`` samples for ``repro selfcheck``;
        exhaustive when the variable/state universes are small."""
        automaton_states = sorted(self.analysis.automaton.states)
        variables = sorted(self.analysis.param_space.universe)
        prims = [ERR]
        for var in variables:
            prims.append(TsParam(var))
            prims.append(TsVar(var))
        prims.extend(TsType(s) for s in automaton_states)
        states = [TOP]
        for ts in sample_subsets(automaton_states, limit=4):
            for vs in sample_subsets(variables, limit=4):
                states.append(TsState(ts, vs))
        return prims, sample_pairs(sample_subsets(variables), states)

    # counterexamples() is inherited from TracerClient: one forward run
    # (through the forward-run cache when the driver passes one), then a
    # per-query scan of the states reaching each Observe label.
