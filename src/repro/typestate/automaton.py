"""Type-state automata.

An automaton supplies, per method, the transition function
``[[m]] : T -> T + {TOP}`` of Figure 4, where the distinguished result
:data:`TOP_TRANSITION` signals a type-state error.

The paper's evaluation uses a *fictitious stress-test property*
(Section 6) whose error transition fires exactly when the analysis is
imprecise — a call on a receiver *not* in the current must-alias set.
To express it, an automaton carries two transition tables:

* ``strong`` — applied when the receiver is in the must-alias set
  (the analysis performs a strong update);
* ``weak`` — applied (and unioned with the old type-states) when the
  receiver may-aliases the tracked object but is not must-aliased.

Ordinary automata (e.g. the File protocol of Figure 1) use the same
table for both, which recovers Figure 4 verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

TOP_TRANSITION = "<top>"
"""Sentinel transition target: the method call is a type-state error."""

_Table = Mapping[str, Mapping[str, str]]


@dataclass(frozen=True)
class TypestateAutomaton:
    """A finite type-state automaton with strong/weak transition tables.

    ``strong[m][s]`` (resp. ``weak[m][s]``) is the new type-state when
    method ``m`` is called on an object in state ``s`` under a strong
    (resp. weak) update, or :data:`TOP_TRANSITION` for an error.
    Methods absent from the tables are not events of this automaton.
    """

    name: str
    states: FrozenSet[str]
    init: str
    strong: Tuple[Tuple[str, Tuple[Tuple[str, str], ...]], ...]
    weak: Tuple[Tuple[str, Tuple[Tuple[str, str], ...]], ...]

    @staticmethod
    def make(
        name: str,
        states: Iterable[str],
        init: str,
        strong: _Table,
        weak: Optional[_Table] = None,
    ) -> "TypestateAutomaton":
        """Build an automaton; ``weak`` defaults to ``strong``.

        Every transition table must be total over ``states`` for each
        method it mentions, and strong/weak must mention the same
        methods.
        """
        states = frozenset(states)
        if init not in states:
            raise ValueError(f"init state {init!r} not in {sorted(states)}")
        weak = strong if weak is None else weak
        if set(strong) != set(weak):
            raise ValueError("strong and weak tables must cover the same methods")
        for table in (strong, weak):
            for method, row in table.items():
                missing = states - set(row)
                if missing:
                    raise ValueError(
                        f"method {method!r} lacks transitions for {sorted(missing)}"
                    )
                for target in row.values():
                    if target != TOP_TRANSITION and target not in states:
                        raise ValueError(f"unknown target state {target!r}")
        return TypestateAutomaton(
            name=name,
            states=states,
            init=init,
            strong=_freeze(strong),
            weak=_freeze(weak),
        )

    @property
    def methods(self) -> FrozenSet[str]:
        return frozenset(method for method, _row in self.strong)

    def is_event(self, method: str) -> bool:
        return method in self.methods

    def strong_target(self, method: str, state: str) -> str:
        return _lookup(self.strong, method, state)

    def weak_target(self, method: str, state: str) -> str:
        return _lookup(self.weak, method, state)

    def strong_error_states(self, method: str) -> FrozenSet[str]:
        """States from which a strongly-updated call on ``method`` errs."""
        return frozenset(
            s for s in self.states if self.strong_target(method, s) == TOP_TRANSITION
        )

    def weak_error_states(self, method: str) -> FrozenSet[str]:
        return frozenset(
            s for s in self.states if self.weak_target(method, s) == TOP_TRANSITION
        )

    def strong_preimage(self, method: str, state: str) -> FrozenSet[str]:
        """States ``s`` with ``strong[m](s) = state``."""
        return frozenset(
            s for s in self.states if self.strong_target(method, s) == state
        )

    def weak_preimage(self, method: str, state: str) -> FrozenSet[str]:
        return frozenset(
            s for s in self.states if self.weak_target(method, s) == state
        )

    @property
    def uniform(self) -> bool:
        """Whether strong and weak tables coincide (a Figure 4 automaton)."""
        return self.strong == self.weak


def _freeze(table: _Table) -> Tuple[Tuple[str, Tuple[Tuple[str, str], ...]], ...]:
    return tuple(
        sorted(
            (method, tuple(sorted(row.items())))
            for method, row in table.items()
        )
    )


def _lookup(table, method: str, state: str) -> str:
    for m, row in table:
        if m == method:
            for s, target in row:
                if s == state:
                    return target
    raise KeyError((method, state))


def file_automaton() -> TypestateAutomaton:
    """The File protocol of Figure 1: ``open`` in state opened and
    ``close`` in state closed are errors."""
    return TypestateAutomaton.make(
        name="File",
        states=["closed", "opened"],
        init="closed",
        strong={
            "open": {"closed": "opened", "opened": TOP_TRANSITION},
            "close": {"opened": "closed", "closed": TOP_TRANSITION},
        },
    )


def stress_automaton(methods: Iterable[str]) -> TypestateAutomaton:
    """The paper's fictitious stress-test property (Section 6).

    Two states, ``init`` and ``error``.  A strongly-updated call (the
    receiver is must-aliased — condition (ii) of Section 6 fails) keeps
    the object in its state; a weakly-updated call drives ``init`` to
    ``error``.  Once in ``error`` the object stays there.
    """
    methods = sorted(set(methods))
    if not methods:
        raise ValueError("stress automaton needs at least one method")
    return TypestateAutomaton.make(
        name="stress",
        states=["init", "error"],
        init="init",
        strong={m: {"init": "init", "error": "error"} for m in methods},
        weak={m: {"init": "error", "error": "error"} for m in methods},
    )
