"""Footprint model for synthesizing the type-state backward transfer
functions (Figure 10) automatically from Figure 4.

The pair ``(p, d)`` is viewed as a boolean assignment over the
primitive formulas themselves: ``err``, one ``type(s)`` bit per
automaton state, one ``var(x)``/``param(x)`` bit per variable.  The
only consistency constraint is that ``err`` excludes every positive
``var``/``type`` bit (``TOP`` carries no must-alias or type-state
information), which :meth:`TypestateFootprint.instantiate` enforces by
returning ``None`` for contradictory assignments.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Tuple

from repro.core.formula import Literal
from repro.core.synthesis import FootprintModel, SynthesizedMeta
from repro.lang.ast import (
    Assign,
    AssignNull,
    AtomicCommand,
    Invoke,
    LoadField,
    LoadGlobal,
    New,
    Observe,
    StoreField,
    StoreGlobal,
    ThreadStart,
)
from repro.typestate.analysis import TypestateAnalysis
from repro.typestate.domain import TOP, TsState
from repro.typestate.meta import ERR, TsErr, TsParam, TsType, TsVar, TypestateTheory


class TypestateFootprint(FootprintModel):
    """Footprints of the Figure 4 transfer functions."""

    def __init__(self, analysis: TypestateAnalysis):
        self.analysis = analysis
        self.automaton = analysis.automaton

    def groups_of_command(self, command: AtomicCommand) -> FrozenSet:
        if isinstance(command, New):
            if command.site == self.analysis.tracked_site:
                return frozenset([("err",), ("param", command.lhs)])
            return frozenset([("var", command.lhs)])
        if isinstance(command, Assign):
            return frozenset(
                [("param", command.lhs), ("var", command.lhs), ("var", command.rhs)]
            )
        if isinstance(command, (AssignNull, LoadField, LoadGlobal)):
            return frozenset([("var", command.lhs)])
        if isinstance(command, Invoke) and self.analysis.is_event(command):
            return frozenset(
                {("err",), ("var", command.base)}
                | {("type", s) for s in self.automaton.states}
            )
        if isinstance(
            command, (StoreField, StoreGlobal, ThreadStart, Observe, Invoke)
        ):
            return frozenset()
        raise TypeError(f"unknown command: {command!r}")

    def group_of_primitive(self, prim):
        if isinstance(prim, TsErr):
            return ("err",)
        if isinstance(prim, TsParam):
            return ("param", prim.var)
        if isinstance(prim, TsVar):
            return ("var", prim.var)
        if isinstance(prim, TsType):
            return ("type", prim.state)
        raise TypeError(f"not a type-state primitive: {prim!r}")

    def group_values(self, group) -> Tuple[bool, ...]:
        return (False, True)

    def group_literal(self, group, value) -> Literal:
        kind = group[0]
        if kind == "err":
            prim = ERR
        elif kind == "param":
            prim = TsParam(group[1])
        elif kind == "var":
            prim = TsVar(group[1])
        else:
            prim = TsType(group[1])
        return Literal(prim, bool(value))

    def instantiate(self, assignment) -> Optional[Tuple[frozenset, object]]:
        err = assignment.get(("err",), False)
        ts = {g[1] for g, v in assignment.items() if g[0] == "type" and v}
        vs = {g[1] for g, v in assignment.items() if g[0] == "var" and v}
        p = frozenset(g[1] for g, v in assignment.items() if g[0] == "param" and v)
        if err:
            # TOP is incompatible with any positive var/type bit.
            if ts or vs:
                return None
            return p, TOP
        return p, TsState(frozenset(ts), frozenset(vs))


def synthesized_typestate_meta(analysis: TypestateAnalysis) -> SynthesizedMeta:
    """A drop-in replacement for :class:`repro.typestate.meta.TypestateMeta`
    whose backward transfer functions are synthesized from the forward
    analysis rather than handwritten."""
    return SynthesizedMeta(analysis, TypestateTheory(), TypestateFootprint(analysis))
