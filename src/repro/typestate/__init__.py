"""The parametric type-state analysis client (Figures 4, 9, 10).

The analysis tracks, for one allocation site of interest, the pair
``(ts, vs)`` of possible type-states and must-alias variables, or the
error state ``TOP``.  The abstraction ``p`` is the set of variables
allowed to appear in must-alias sets; cost is ``|p|``.
"""

from repro.typestate.automaton import (
    TOP_TRANSITION,
    TypestateAutomaton,
    file_automaton,
    stress_automaton,
)
from repro.typestate.domain import TOP, TsState, TsTop
from repro.typestate.analysis import TypestateAnalysis
from repro.typestate.meta import (
    TsErr,
    TsParam,
    TsType,
    TsVar,
    TypestateMeta,
    TypestateTheory,
)
from repro.typestate.client import TypestateClient, TypestateQuery
from repro.typestate.synth import TypestateFootprint, synthesized_typestate_meta

__all__ = [
    "TOP",
    "TOP_TRANSITION",
    "TsErr",
    "TsParam",
    "TsState",
    "TsTop",
    "TsType",
    "TsVar",
    "TypestateAnalysis",
    "TypestateAutomaton",
    "TypestateClient",
    "TypestateFootprint",
    "TypestateMeta",
    "TypestateQuery",
    "TypestateTheory",
    "file_automaton",
    "stress_automaton",
    "synthesized_typestate_meta",
]
