"""Transfer semantics of the type-state analysis (Figure 4), as
guarded-update case tables.

One analysis instance tracks the objects of a single allocation site
``tracked_site``.  A call ``v.m()`` is an *event* when ``m`` belongs to
the automaton and ``v`` may point to the tracked site according to a
may-alias oracle (the 0-CFA analysis of the front end); other commands
affect only the must-alias set:

* ``x = y`` adds ``x`` to the must-alias set iff ``y`` is in it *and*
  the abstraction ``p`` tracks ``x`` — otherwise ``x`` is dropped;
* any other assignment to ``x`` (``null``, a fresh allocation at a
  different site, a field/global load) drops ``x``;
* ``x = new tracked_site`` (re)starts tracking: the state becomes
  ``({init}, {x} ∩ p)``;
* heap stores and thread starts leave the state unchanged.

``TOP`` is absorbing: every non-trivial table opens with an
``err``-guarded identity case, so the remaining guards and effects may
assume a ``(ts, vs)`` state.  Each command is described once by
:meth:`TypestateSemantics.table_for`; the framework derives both the
forward transfer function and the Figure 10 weakest preconditions from
the same table.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Optional

from repro.core.formula import TRUE, conj, disj, lit, neg, nlit
from repro.core.parametric import ParametricAnalysis, SubsetParamSpace
from repro.core.semantics import (
    IDENTITY,
    BoolExpr,
    Case,
    Const,
    Effect,
    GuardedSemantics,
    Location,
    SemanticsBinding,
    Updates,
)
from repro.lang.ast import (
    Assign,
    AssignNull,
    AtomicCommand,
    Invoke,
    LoadField,
    LoadGlobal,
    New,
    Observe,
    StoreField,
    StoreGlobal,
    ThreadStart,
)
from repro.typestate.automaton import TypestateAutomaton
from repro.typestate.domain import TOP, TsState, TsTop
from repro.typestate.meta import (
    ERR,
    TsErr,
    TsParam,
    TsType,
    TsVar,
    TypestateTheory,
)

MayPoint = Callable[[str], bool]

_ERR_LOC: Location = ("err",)


class TypestateBinding(SemanticsBinding):
    """Location <-> primitive binding: ``("err",)`` for the ``TOP``
    flag, ``("var", x)`` for must-alias membership, ``("type", s)``
    for type-state membership; parameter primitives have no location."""

    def __init__(self):
        self.theory = TypestateTheory()

    def location_of(self, prim):
        if isinstance(prim, TsErr):
            return _ERR_LOC
        if isinstance(prim, TsVar):
            return ("var", prim.var)
        if isinstance(prim, TsType):
            return ("type", prim.state)
        return None  # TsParam: a parameter primitive

    def location_literal(self, location, value):
        kind = location[0]
        if kind == "err":
            target = lit(ERR)
        elif kind == "var":
            target = lit(TsVar(location[1]))
        else:
            target = lit(TsType(location[1]))
        return target if value else neg(target)

    def compile_read(self, location):
        kind = location[0]
        if kind == "err":
            return lambda p, d: isinstance(d, TsTop)
        name = location[1]
        if kind == "var":
            return lambda p, d: name in d.vs
        return lambda p, d: name in d.ts

    def compile_write(self, location):
        # The ``err`` flag is only ever written by the special effects
        # (GoTop/Restart), which build whole states directly.
        kind, name = location
        if kind == "var":

            def write_var(d, value):
                if value:
                    return d if name in d.vs else d.with_vs(d.vs | {name})
                return d.with_vs(d.vs - {name}) if name in d.vs else d

            return write_var
        if kind == "type":

            def write_type(d, value):
                if value:
                    return d if name in d.ts else d.with_ts(d.ts | {name})
                return d.with_ts(d.ts - {name}) if name in d.ts else d

            return write_type
        raise TypeError(f"cannot write location {location!r} generically")

    def compile_store(self, locations):
        # Batch form for the event tables, which rewrite every
        # type-state membership at once: build the new ts set in one
        # pass instead of chaining with_ts.
        if all(loc[0] == "type" for loc in locations):
            states = tuple(loc[1] for loc in locations)
            written = frozenset(states)

            def store(d, values):
                ts = frozenset(
                    s for s, value in zip(states, values) if value
                ) | (d.ts - written)
                return d if ts == d.ts else d.with_ts(ts)

            return store
        return super().compile_store(locations)

    def compile_primitive_test(self, prim):
        # Guards are evaluated in table order and every state-reading
        # guard sits behind an err-guarded identity case, so the var/
        # type tests may assume a TsState.
        if isinstance(prim, TsErr):
            return lambda p, d: isinstance(d, TsTop)
        if isinstance(prim, TsParam):
            var = prim.var
            return lambda p, d: var in p
        if isinstance(prim, TsVar):
            var = prim.var
            return lambda p, d: var in d.vs
        state = prim.state
        return lambda p, d: state in d.ts

    def compile_primitive_test_bound(self, prim, p):
        if isinstance(prim, TsErr):
            return lambda d: isinstance(d, TsTop)
        if isinstance(prim, TsParam):
            value = prim.var in p
            return lambda d: value
        if isinstance(prim, TsVar):
            var = prim.var
            return lambda d: var in d.vs
        state = prim.state
        return lambda d: state in d.ts


class GoTop(Effect):
    """The error transition: the state becomes the absorbing ``TOP``."""

    __slots__ = ()

    def __repr__(self):
        return "GoTop()"

    def value_expr_at(self, location, binding):
        if location[0] == "err":
            return Const(True)
        return Const(False)

    def compile(self, binding):
        return lambda p, d: TOP

    def param_primitives(self, binding):
        return ()


GO_TOP = GoTop()


class Restart(Effect):
    """``x = new tracked_site``: the state becomes ``({init}, {x} ∩ p)``."""

    __slots__ = ("lhs", "init")

    def __init__(self, lhs: str, init: str):
        self.lhs = lhs
        self.init = init

    def __repr__(self):
        return f"Restart({self.lhs!r}, {self.init!r})"

    def value_expr_at(self, location, binding):
        kind = location[0]
        if kind == "err":
            return Const(False)
        if kind == "type":
            return Const(location[1] == self.init)
        if location[1] == self.lhs:
            return BoolExpr(lit(TsParam(self.lhs)))
        return Const(False)

    def compile(self, binding):
        lhs = self.lhs
        ts = frozenset([self.init])
        tracked = frozenset([lhs])
        untracked = frozenset()
        return lambda p, d: TsState(ts, tracked if lhs in p else untracked)

    def param_primitives(self, binding):
        return (TsParam(self.lhs),)


class TypestateSemantics(GuardedSemantics):
    """Case tables of the type-state transfer functions."""

    metrics_name = "typestate"

    def __init__(
        self,
        automaton: TypestateAutomaton,
        tracked_site: str,
        is_event: Callable[[AtomicCommand], bool],
    ):
        super().__init__(TypestateBinding())
        self.automaton = automaton
        self.tracked_site = tracked_site
        self._is_event = is_event

    def table_for(self, command: AtomicCommand):
        if isinstance(command, New):
            if command.site == self.tracked_site:
                return self._guarded(
                    Restart(command.lhs, self.automaton.init)
                )
            return self._drop(command.lhs)
        if isinstance(command, Assign):
            value = BoolExpr(
                conj(lit(TsParam(command.lhs)), lit(TsVar(command.rhs)))
            )
            return self._guarded(Updates.of({("var", command.lhs): value}))
        if isinstance(command, (AssignNull, LoadField, LoadGlobal)):
            return self._drop(command.lhs)
        if isinstance(command, Invoke) and self._is_event(command):
            return self._event_table(command)
        if isinstance(
            command, (StoreField, StoreGlobal, ThreadStart, Observe, Invoke)
        ):
            return (Case(TRUE, IDENTITY),)
        raise TypeError(f"unknown command: {command!r}")

    @staticmethod
    def _guarded(effect: Effect):
        """TOP is absorbing: every effect sits behind an err guard."""
        return (Case(lit(ERR), IDENTITY), Case(nlit(ERR), effect))

    def _drop(self, lhs: str):
        """An assignment whose source is untracked drops ``lhs``."""
        return self._guarded(Updates.of({("var", lhs): Const(False)}))

    def _event_table(self, command: Invoke):
        """An automaton event ``v.m()``: strong update when ``v`` is
        must-aliased, weak update (union with the old type-states)
        otherwise; either errs from the table's error states."""
        automaton = self.automaton
        method = command.method
        base = command.base
        states = sorted(automaton.states)
        strong_err = sorted(automaton.strong_error_states(method))
        weak_err = sorted(automaton.weak_error_states(method))
        in_strong_err = disj(*(lit(TsType(s)) for s in strong_err))
        no_strong_err = conj(*(nlit(TsType(s)) for s in strong_err))
        in_weak_err = disj(*(lit(TsType(s)) for s in weak_err))
        no_weak_err = conj(*(nlit(TsType(s)) for s in weak_err))
        aliased = lit(TsVar(base))
        not_aliased = nlit(TsVar(base))

        strong_updates = {}
        for s2 in states:
            pre = disj(
                *(
                    lit(TsType(s))
                    for s in sorted(automaton.strong_preimage(method, s2))
                )
            )
            if pre != lit(TsType(s2)):
                strong_updates[("type", s2)] = BoolExpr(pre)
        weak_updates = {}
        for s2 in states:
            pre = disj(
                lit(TsType(s2)),
                *(
                    lit(TsType(s))
                    for s in sorted(automaton.weak_preimage(method, s2))
                    if s != s2
                ),
            )
            if pre != lit(TsType(s2)):
                weak_updates[("type", s2)] = BoolExpr(pre)

        return (
            Case(lit(ERR), IDENTITY),
            Case(conj(aliased, in_strong_err), GO_TOP),
            Case(conj(aliased, no_strong_err), Updates.of(strong_updates)),
            Case(conj(not_aliased, nlit(ERR), in_weak_err), GO_TOP),
            Case(
                conj(not_aliased, nlit(ERR), no_weak_err),
                Updates.of(weak_updates),
            ),
        )


class TypestateAnalysis(ParametricAnalysis):
    """The parametric type-state analysis ``(2^V, |.|, D, [[.]]p)``."""

    def __init__(
        self,
        automaton: TypestateAutomaton,
        tracked_site: str,
        variables: FrozenSet[str],
        may_point: Optional[MayPoint] = None,
        event_labels: Optional[FrozenSet[str]] = None,
    ):
        self.automaton = automaton
        self.tracked_site = tracked_site
        self.param_space = SubsetParamSpace(frozenset(variables))
        self.may_point: MayPoint = may_point or (lambda _var: True)
        self.event_labels = event_labels
        self.semantics = TypestateSemantics(
            automaton, tracked_site, self.is_event
        )

    def initial_state(self) -> TsState:
        """Before any allocation the tracked object is (vacuously) in
        its initial type-state with an empty must-alias set."""
        return TsState.make([self.automaton.init], [])

    def is_event(self, command: AtomicCommand) -> bool:
        """Whether ``command`` drives the automaton for this instance.

        A call is an event when its method belongs to the automaton,
        its receiver may point to the tracked site, and — when
        ``event_labels`` is set — it originates from an event call
        site (the paper's "method call in application code")."""
        return (
            isinstance(command, Invoke)
            and self.automaton.is_event(command.method)
            and self.may_point(command.base)
            and (self.event_labels is None or command.site_label in self.event_labels)
        )

    def transfer(self, command: AtomicCommand, p: FrozenSet[str], d):
        return self.semantics.transfer(command, p, d)
