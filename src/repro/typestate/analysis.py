"""Forward transfer functions of the type-state analysis (Figure 4).

One analysis instance tracks the objects of a single allocation site
``tracked_site``.  A call ``v.m()`` is an *event* when ``m`` belongs to
the automaton and ``v`` may point to the tracked site according to a
may-alias oracle (the 0-CFA analysis of the front end); other commands
affect only the must-alias set:

* ``x = y`` adds ``x`` to the must-alias set iff ``y`` is in it *and*
  the abstraction ``p`` tracks ``x`` — otherwise ``x`` is dropped;
* any other assignment to ``x`` (``null``, a fresh allocation at a
  different site, a field/global load) drops ``x``;
* ``x = new tracked_site`` (re)starts tracking: the state becomes
  ``({init}, {x} ∩ p)``;
* heap stores and thread starts leave the state unchanged.

``TOP`` is absorbing: every command maps ``TOP`` to ``TOP``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, FrozenSet, Optional

from repro.core.parametric import ParametricAnalysis, SubsetParamSpace
from repro.lang.ast import (
    Assign,
    AssignNull,
    AtomicCommand,
    Invoke,
    LoadField,
    LoadGlobal,
    New,
    Observe,
    StoreField,
    StoreGlobal,
    ThreadStart,
)
from repro.typestate.automaton import TOP_TRANSITION, TypestateAutomaton
from repro.typestate.domain import TOP, TsState, TsTop

MayPoint = Callable[[str], bool]


class TypestateAnalysis(ParametricAnalysis):
    """The parametric type-state analysis ``(2^V, |.|, D, [[.]]p)``."""

    def __init__(
        self,
        automaton: TypestateAutomaton,
        tracked_site: str,
        variables: FrozenSet[str],
        may_point: Optional[MayPoint] = None,
        event_labels: Optional[FrozenSet[str]] = None,
    ):
        self.automaton = automaton
        self.tracked_site = tracked_site
        self.param_space = SubsetParamSpace(frozenset(variables))
        self.may_point: MayPoint = may_point or (lambda _var: True)
        self.event_labels = event_labels

    def initial_state(self) -> TsState:
        """Before any allocation the tracked object is (vacuously) in
        its initial type-state with an empty must-alias set."""
        return TsState.make([self.automaton.init], [])

    def is_event(self, command: AtomicCommand) -> bool:
        """Whether ``command`` drives the automaton for this instance.

        A call is an event when its method belongs to the automaton,
        its receiver may point to the tracked site, and — when
        ``event_labels`` is set — it originates from an event call
        site (the paper's "method call in application code")."""
        return (
            isinstance(command, Invoke)
            and self.automaton.is_event(command.method)
            and self.may_point(command.base)
            and (self.event_labels is None or command.site_label in self.event_labels)
        )

    def transfer(self, command: AtomicCommand, p: FrozenSet[str], d):
        if isinstance(d, TsTop):
            return TOP
        if isinstance(command, New):
            if command.site == self.tracked_site:
                vs = frozenset([command.lhs]) if command.lhs in p else frozenset()
                return TsState(frozenset([self.automaton.init]), vs)
            return d.with_vs(d.vs - {command.lhs})
        if isinstance(command, Assign):
            if command.rhs in d.vs and command.lhs in p:
                return d.with_vs(d.vs | {command.lhs})
            return d.with_vs(d.vs - {command.lhs})
        if isinstance(command, (AssignNull, LoadField, LoadGlobal)):
            return d.with_vs(d.vs - {command.lhs})
        if isinstance(command, Invoke) and self.is_event(command):
            return self._event(command, d)
        if isinstance(
            command, (StoreField, StoreGlobal, ThreadStart, Observe, Invoke)
        ):
            return d
        raise TypeError(f"unknown command: {command!r}")

    def _event(self, command: Invoke, d: TsState):
        method = command.method
        automaton = self.automaton
        if command.base in d.vs:
            if d.ts & automaton.strong_error_states(method):
                return TOP
            return d.with_ts(
                automaton.strong_target(method, s) for s in d.ts
            )
        if d.ts & automaton.weak_error_states(method):
            return TOP
        return d.with_ts(
            d.ts | {automaton.weak_target(method, s) for s in d.ts}
        )
