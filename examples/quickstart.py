"""Quickstart — the paper's Figure 1 worked example, end to end.

The program manipulates a File object through two aliased variables.
TRACER searches the family of 2^N abstractions (which variables the
type-state analysis may track in must-alias sets) and:

* proves ``check1`` (the file is closed at the end) with the cheapest
  abstraction ``{x, y}``;
* shows ``check2`` (the file is opened at the end) is impossible — no
  abstraction in the family can prove it.

Run:  python examples/quickstart.py
"""

from repro import (
    Tracer,
    TracerConfig,
    TypestateClient,
    TypestateQuery,
    file_automaton,
    parse_program,
    pretty_program,
)

PROGRAM = parse_program(
    """
    x = new File
    y = x
    choice {
      z = x          # irrelevant to both queries
    } or {
      skip
    }
    x.open()
    y.close()
    observe check1   # is the file closed here?
    observe check2   # is the file opened here?
    """
)


def main() -> None:
    print("Program under analysis:")
    print(pretty_program(PROGRAM))
    print()

    client = TypestateClient(
        PROGRAM,
        file_automaton(),
        tracked_site="File",
        variables=frozenset({"x", "y", "z"}),
    )
    tracer = Tracer(client, TracerConfig(k=1))

    check1 = TypestateQuery("check1", allowed=frozenset({"closed"}))
    record = tracer.solve(check1)
    print(f"check1 (file closed?):   {record.status.value}")
    print(f"  cheapest abstraction:  {sorted(record.abstraction)}")
    print(f"  iterations:            {record.iterations}")
    assert record.abstraction == frozenset({"x", "y"}), "paper says {x, y}!"

    check2 = TypestateQuery("check2", allowed=frozenset({"opened"}))
    record = tracer.solve(check2)
    print(f"check2 (file opened?):   {record.status.value}")
    print(f"  iterations:            {record.iterations}")
    print()
    print(
        "As in Figure 1: check1 is provable by tracking exactly {x, y}; "
        "check2 cannot be proven by ANY abstraction, and TRACER proves "
        "that instead of diverging."
    )


if __name__ == "__main__":
    main()
