"""Reproduce the paper's full evaluation section in one run.

Synthesizes the seven-benchmark suite, resolves every type-state and
thread-escape query with grouped TRACER, and prints Tables 1-4 and
Figures 12-14.  With ``--quick`` only the four smallest benchmarks are
evaluated (roughly 10x faster).

Run:  python examples/full_evaluation.py [--quick] [--k K]
"""

import argparse
import sys

from repro.bench.report import SMALLEST, full_report
from repro.bench.suite import BENCHMARK_NAMES


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="evaluate only the 4 smallest benchmarks"
    )
    parser.add_argument(
        "--k", type=int, default=5, help="beam width of the meta-analysis (default 5)"
    )
    args = parser.parse_args(argv)
    names = SMALLEST if args.quick else BENCHMARK_NAMES
    full_report(names=names, k=args.k)
    return 0


if __name__ == "__main__":
    sys.exit(main())
