"""Auditing a File open/close protocol across procedure boundaries.

This example drives the whole pipeline the way the paper's evaluation
does: a mini-Java program is analysed with 0-CFA, inlined with full
context sensitivity, and TRACER resolves one query per API call site —
"is the file in the right state when this call happens?".

The program threads a File through a helper object::

    class Session { use(file) { file.open(); file.close(); } }
    main() {
        f = new File; s = new Session;
        s.use(f);            // open/close through the callee's alias
        f.open();            // fine: closed again after use()
        if (*) f.close();
        f.close();           // double close on one path!
    }

Expected outcomes:

* calls that need must-alias tracking through the call boundary are
  proven with a 2-variable abstraction (the caller's ``f`` and the
  callee's ``file`` parameter);
* the final ``close`` is *impossible to prove* — on the path that
  already closed the file no abstraction helps, and TRACER proves
  that rather than searching forever.

Run:  python examples/file_protocol_audit.py
"""

from repro import Tracer, TracerConfig, TypestateClient, TypestateQuery, file_automaton
from repro.frontend import (
    ClassDef,
    FrontProgram,
    MethodDef,
    SApiCall,
    SCall,
    SIf,
    SNew,
    build_callgraph,
    inline_program,
)
from repro.frontend.mayalias import MayAliasOracle


def build_program() -> FrontProgram:
    program = FrontProgram()
    program.add_class(ClassDef(name="File", is_library=True))
    program.add_class(
        ClassDef(
            name="Session",
            methods={
                "use": MethodDef(
                    name="use",
                    params=("file",),
                    body=[
                        SApiCall("file", "open"),
                        SApiCall("file", "close"),
                    ],
                )
            },
        )
    )
    program.add_class(
        ClassDef(
            name="Main",
            methods={
                "main": MethodDef(
                    name="main",
                    body=[
                        SNew("f", "File"),
                        SNew("s", "Session"),
                        SCall(lhs=None, base="s", method="use", args=("f",)),
                        SApiCall("f", "open"),
                        SIf(then=[SApiCall("f", "close")], els=[]),
                        SApiCall("f", "close"),
                    ],
                )
            },
        )
    )
    return program.finalize()


def main() -> None:
    program = build_program()
    callgraph = build_callgraph(program)
    inlined = inline_program(program, callgraph)
    oracle = MayAliasOracle(callgraph, inlined.var_origin)

    file_site = next(
        site for site, cls in program.site_class.items() if cls == "File"
    )
    client = TypestateClient(
        inlined.program,
        file_automaton(),
        tracked_site=file_site,
        variables=inlined.variables,
        may_point=oracle.for_site(file_site),
    )
    tracer = Tracer(client, TracerConfig(k=5))

    # One query per API call site: open() needs a closed file,
    # close() needs an opened one.
    allowed_for = {"open": frozenset({"closed"}), "close": frozenset({"opened"})}
    print(f"tracking File objects allocated at site {file_site}\n")
    for pc, (_cls, _meth, receiver, method) in sorted(inlined.call_points.items()):
        if method not in allowed_for:
            continue
        record = tracer.solve(TypestateQuery(pc, allowed_for[method]))
        spot = f"{pc} ({receiver}.{method}())"
        if record.proven:
            tracked = sorted(record.abstraction)
            print(f"  {spot:<36} PROVEN   tracking {tracked}")
        else:
            print(f"  {spot:<36} {record.status.value.upper()}")
    print()
    print(
        "The double close is reported impossible: along the path that "
        "already closed the file, no must-alias information can make "
        "the final close() safe."
    )


if __name__ == "__main__":
    main()
