"""Thread-escape analysis with and without under-approximation —
the paper's Figure 6, plus a look inside the backward meta-analysis.

The program stores a local object into another object's field and asks
whether the first object stays thread-local.  Proving it requires
mapping *both* allocation sites to the precise summary ``L``; TRACER
discovers that minimal abstraction.  The demo contrasts the backward
meta-analysis with the beam disabled (one iteration, bigger formulas)
against beam width ``k = 1`` (one cube per formula, one extra
iteration) and prints the actual formulas it propagates.

Run:  python examples/thread_escape_demo.py
"""

from repro import EscSchema, EscapeClient, EscapeQuery, Tracer, TracerConfig
from repro.core import backward_trace
from repro.lang import parse_program, pretty_command

PROGRAM = parse_program(
    """
    u = new h1
    v = new h2
    v.f = u
    observe pc     # local(u)?
    """
)


def show_backward(client, k, label):
    """Run one backward pass under the cheapest abstraction and print
    the formula tracked at every trace point."""
    query = EscapeQuery("pc", "u")
    p = frozenset()  # cheapest abstraction: every site summarised as E
    trace = client.counterexamples([query], p)[query]
    result = backward_trace(
        client.meta,
        client.analysis,
        trace,
        p,
        client.analysis.initial_state(),
        client.fail_condition(query),
        k=k,
    )
    print(f"--- backward meta-analysis, {label} ---")
    for formula, command in zip(result.intermediate, list(trace) + [None]):
        print(f"  nu: {formula}")
        if command is not None:
            print(f"      {pretty_command(command)}")
    print(f"  max tracked disjuncts: {result.max_disjuncts}")
    print()
    return result


def main() -> None:
    client = EscapeClient(
        PROGRAM, EscSchema(["u", "v"], ["f"]), sites=frozenset({"h1", "h2"})
    )
    query = EscapeQuery("pc", "u")

    # Figure 6(a): no under-approximation — one counterexample suffices.
    show_backward(client, k=None, label="no under-approximation (Fig 6a)")
    full = Tracer(client, TracerConfig(k=None)).solve(query)
    print(
        f"k=None : proven in {full.iterations} iterations, cheapest "
        f"abstraction maps {sorted(full.abstraction)} to L"
    )
    print()

    # Figure 6(b): beam width 1 — compact formulas, one extra iteration.
    show_backward(client, k=1, label="beam k=1 (Fig 6b)")
    beam = Tracer(client, TracerConfig(k=1)).solve(query)
    print(
        f"k=1    : proven in {beam.iterations} iterations, cheapest "
        f"abstraction maps {sorted(beam.abstraction)} to L"
    )
    assert full.abstraction == beam.abstraction == frozenset({"h1", "h2"})
    print()
    print(
        "Both modes find the same minimum abstraction; the beam trades "
        "an extra CEGAR iteration for much smaller formulas — the "
        "trade-off Figure 13 quantifies."
    )


if __name__ == "__main__":
    main()
