"""Interprocedural mode: recursion without inlining.

The paper's analyses run on an interprocedural tabulation engine
(RHS-style); this reproduction offers both context-cloning *inlining*
(exact for acyclic call graphs) and a summary-based *tabulation*
engine whose context sensitivity comes from procedure entry states —
and which handles recursion, where inlining must cut.

The program below builds a linked chain through unbounded recursion::

    class Node { next;
        grow() { child = new Node; this.next = child; child.grow(); } }
    main() { head = new Node; head.grow(); t = head.next; }   // local?

TRACER over the tabulation engine proves the chain head thread-local
by mapping its allocation site to L; a second variant that registers
every node (including the head) in a global registry is (correctly)
shown impossible to prove — no abstraction helps.

Run:  python examples/recursive_structures.py
"""

from repro import EscSchema, EscapeClient, EscapeQuery, Tracer, TracerConfig
from repro.frontend import (
    ClassDef,
    FrontProgram,
    MethodDef,
    SCall,
    SIf,
    SLoadField,
    SNew,
    SStoreField,
    SStoreGlobal,
    lower_procedures,
)


def build_program(publish: bool) -> FrontProgram:
    grow_body = [
        SNew("child", "Node"),
        SStoreField("this", "next", "child"),
    ]
    if publish:
        grow_body.append(SStoreGlobal("registry", "this"))
    # Recurse on a non-deterministic condition (the base case stops).
    grow_body.append(
        SIf(then=[SCall(lhs=None, base="child", method="grow")], els=[])
    )
    program = FrontProgram()
    program.add_class(
        ClassDef(
            name="Node",
            fields=("next",),
            methods={"grow": MethodDef(name="grow", body=grow_body)},
        )
    )
    program.add_class(
        ClassDef(
            name="Main",
            methods={
                "main": MethodDef(
                    name="main",
                    body=[
                        SNew("head", "Node"),
                        SCall(lhs=None, base="head", method="grow"),
                        SLoadField("t", "head", "next"),
                    ],
                )
            },
        )
    )
    return program.finalize()


def analyse(publish: bool) -> None:
    program = build_program(publish)
    lowered = lower_procedures(program)
    print(
        f"publish={publish}: {len(lowered.graph.procedures)} procedures, "
        f"recursive: {sorted(lowered.recursive_procs)}"
    )
    schema = EscSchema(
        sorted(lowered.variables | lowered.query_vars), sorted(lowered.fields)
    )
    client = EscapeClient(lowered.graph, schema, lowered.sites)
    pc, (_cls, _meth, base, qvar) = sorted(lowered.access_points.items())[0]
    record = Tracer(client, TracerConfig(k=5)).solve(EscapeQuery(pc, qvar))
    print(f"  query: is `{base}` thread-local at {pc}?")
    if record.proven:
        print(
            f"  PROVEN with {sorted(record.abstraction)} mapped to L "
            f"({record.iterations} iterations)"
        )
    else:
        print(f"  {record.status.value.upper()} ({record.iterations} iterations)")
    print()


def main() -> None:
    analyse(publish=False)
    analyse(publish=True)
    print(
        "Inlining would have to cut the recursive grow() calls; the\n"
        "tabulation engine summarises them per entry state instead —\n"
        "and TRACER's optimum/impossibility guarantees carry over."
    )


if __name__ == "__main__":
    main()
