"""Devirtualization with the provenance client — a third analysis.

This example demonstrates the framework's generality beyond the
paper's two clients: a flow-sensitive *allocation-site provenance*
analysis, parametric in which sites are tracked precisely, answers the
question a JIT or AOT compiler asks before devirtualising a call:
"can `handler` only denote objects allocated at these sites?"

TRACER finds the minimum set of sites to track (the cost of precision)
or proves that no amount of tracking helps (the call must stay
virtual).

Run:  python examples/devirtualization.py
"""

from repro import Tracer, TracerConfig, parse_program
from repro.core.narrate import narrate
from repro.lang import collect_universe
from repro.provenance import ProvenanceClient, ProvenanceQuery, PtSchema

PROGRAM = parse_program(
    """
    # Two concrete handler implementations and a decoy allocation.
    choice {
      handler = new FastHandler
    } or {
      handler = new SlowHandler
    }
    decoy = new Buffer
    backup = handler
    observe dispatch1      # devirtualise handler.handle() here?

    # Later the handler is reloaded from a shared registry ...
    handler = $registry
    observe dispatch2      # ... and dispatched again
    """
)


def main() -> None:
    universe = collect_universe(PROGRAM)
    client = ProvenanceClient(
        PROGRAM, PtSchema(universe.variables), universe.sites
    )
    tracer = Tracer(client, TracerConfig(k=2))

    handlers = frozenset({"FastHandler", "SlowHandler"})

    q1 = ProvenanceQuery("dispatch1", "handler", handlers)
    record = tracer.solve(q1)
    print("dispatch1: handler in {FastHandler, SlowHandler}?")
    print(f"  {record.status.value} — track {sorted(record.abstraction)} "
          f"({record.iterations} iterations)")
    assert record.abstraction == handlers
    print("  => the call can be devirtualised to a 2-way dispatch;")
    print("     the decoy Buffer site never enters the abstraction\n")

    q2 = ProvenanceQuery("dispatch1", "handler", frozenset({"FastHandler"}))
    record = tracer.solve(q2)
    print("dispatch1: handler ONLY FastHandler?")
    print(f"  {record.status.value} ({record.iterations} iterations)")
    print("  => the SlowHandler branch genuinely flows here; no")
    print("     abstraction can prove a single-target dispatch\n")

    q3 = ProvenanceQuery("dispatch2", "handler", handlers)
    record = tracer.solve(q3)
    print("dispatch2 (after the registry reload): handler known?")
    print(f"  {record.status.value} ({record.iterations} iterations)")
    print("  => loading from the registry loses provenance; TRACER")
    print("     proves no tracking budget can recover it\n")

    print("--- TRACER transcript for the first query ---")
    print(narrate(client, q1, TracerConfig(k=2)).render())


if __name__ == "__main__":
    main()
