"""Table 1 — benchmark statistics.

Regenerates the paper's benchmark-characteristics table: classes,
methods, code-size proxies, and the log2 abstraction-family sizes for
both client analyses.  The measured kernel is the whole front-end
pipeline (synthesis + 0-CFA + inlining + metrics) on one benchmark.
"""

from repro.bench.harness import prepare
from repro.bench.tables import render_table1


def test_table1(benchmark, instances, save_output):
    benchmark.pedantic(lambda: prepare("weblech"), rounds=3, iterations=1)
    metrics = [instances[name].metrics for name in instances]
    save_output("table1.txt", "Table 1: benchmark statistics\n" + render_table1(metrics))
    assert len(metrics) == 7
    # The suite preserves the paper's relative size ordering.
    by_name = {m.name: m for m in metrics}
    assert by_name["tsp"].inlined_commands < by_name["weblech"].inlined_commands
    assert by_name["weblech"].inlined_commands < by_name["avrora"].inlined_commands
    assert all(m.escape_log2_abstractions > 0 for m in metrics)
