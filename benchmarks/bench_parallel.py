"""Parallel harness benchmark — speedup and determinism.

Runs the 4 smallest benchmarks x both client analyses once serially
and once on a 4-worker process pool, checks that every record (status,
abstraction, iterations, forward runs) is identical, renders Figure 12
and Table 2 from time-normalised records to prove byte-identical
output, and reports the wall-clock ratio.  The speedup assertion only
applies on multi-core runners — a single-core machine still checks
determinism and records the (expected ~1x or worse) ratio.
"""

import dataclasses
import os
import time

from repro.bench.figures import render_figure12
from repro.bench.harness import prepare
from repro.bench.parallel import evaluate_many
from repro.bench.tables import render_table2
from repro.core.stats import summarize_records
from repro.core.tracer import TracerConfig

SMALLEST = ("tsp", "elevator", "hedc", "weblech")
CONFIG = TracerConfig(k=5, max_iterations=30)
JOBS = 4


def _record_key(record):
    return (
        record.query_id,
        record.status,
        record.abstraction,
        record.abstraction_cost,
        record.iterations,
        record.forward_runs,
        record.forward_cache_hits,
        record.max_disjuncts,
    )


def _rendered(results):
    """Figure 12 + Table 2 from time-normalised records."""
    aggregates = {
        name: tuple(
            summarize_records(
                [
                    dataclasses.replace(r, time_seconds=0.0)
                    for r in results[name][analysis].records
                ]
            )
            for analysis in ("typestate", "escape")
        )
        for name in results
    }
    return render_figure12(aggregates) + "\n\n" + render_table2(aggregates)


def test_parallel_speedup_and_equality(save_output):
    instances = {name: prepare(name) for name in SMALLEST}
    analyses = ("typestate", "escape")

    started = time.perf_counter()
    serial = evaluate_many(instances, analyses, CONFIG, jobs=1)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = evaluate_many(instances, analyses, CONFIG, jobs=JOBS)
    parallel_seconds = time.perf_counter() - started

    # Determinism: every record identical up to wall-clock time.
    for name in SMALLEST:
        for analysis in analyses:
            assert [
                _record_key(r) for r in serial[name][analysis].records
            ] == [_record_key(r) for r in parallel[name][analysis].records], (
                name,
                analysis,
            )

    # Rendered output: byte-identical once times are normalised.
    assert _rendered(serial) == _rendered(parallel)

    cpus = os.cpu_count() or 1
    ratio = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    lines = [
        "Parallel evaluation harness (4 smallest benchmarks, both analyses)",
        f"  cpus={cpus} jobs={JOBS}",
        f"  serial:   {serial_seconds:.2f}s",
        f"  parallel: {parallel_seconds:.2f}s",
        f"  speedup:  {ratio:.2f}x",
        "  records: identical; rendered Figure 12/Table 2: identical",
    ]
    save_output("parallel.txt", "\n".join(lines))

    if cpus >= 4:
        # On a genuinely multi-core runner the fan-out must pay for its
        # process overhead on this workload.
        assert ratio > 1.1, f"expected speedup, got {ratio:.2f}x"
