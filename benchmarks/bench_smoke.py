"""Perf smoke benchmark: micro kernels + a scaled-down evaluation.

Runs in well under a minute and writes a machine-readable
``BENCH_smoke.json`` (timestamped wall-clock timings and cache-hit
rates) so successive PRs leave a perf trajectory that can be diffed.

Usage::

    scripts/bench_smoke.sh            # or
    PYTHONPATH=src python benchmarks/bench_smoke.py [output.json]

The module is import-safe for pytest collection; all work happens in
:func:`main`.
"""

from __future__ import annotations

import json
import os
import platform
import random
import sys
import time
from dataclasses import dataclass


def _time_kernel(kernel, repeats=5):
    """Best-of-N wall time of ``kernel`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        kernel()
        best = min(best, time.perf_counter() - started)
    return best


# -- micro kernels (self-contained versions of bench_micro's hot paths) -------


def micro_dnf_simplify():
    from repro.core.formula import Primitive, Theory, conj, disj, lit, nlit, simplify, to_dnf

    @dataclass(frozen=True)
    class Atom(Primitive):
        name: str

    class AtomTheory(Theory):
        def holds(self, prim, p, d):
            return True

        def is_param(self, prim):
            return False

    theory = AtomTheory()
    rng = random.Random(7)
    atoms = [lit(Atom(f"s{i}")) for i in range(8)] + [
        nlit(Atom(f"s{i}")) for i in range(8)
    ]
    formulas = [
        disj(*(conj(*rng.sample(atoms, rng.randint(2, 4))) for _ in range(12)))
        for _ in range(20)
    ]

    def kernel():
        return [simplify(to_dnf(f, theory), theory) for f in formulas]

    return _time_kernel(kernel)


def micro_mincost_sat():
    from repro.core.minsat import MinCostSat, NegLit, PosLit

    rng = random.Random(13)
    variables = [f"v{i}" for i in range(20)]
    clauses = [
        [
            (PosLit if rng.random() < 0.7 else NegLit)(rng.choice(variables))
            for _ in range(rng.randint(1, 3))
        ]
        for _ in range(40)
    ]

    def kernel():
        solver = MinCostSat()
        for clause in clauses:
            solver.add_clause(clause)
        return solver.solve()

    return _time_kernel(kernel)


def micro_collecting_run():
    from repro.dataflow import run_collecting
    from repro.escape import EscSchema, EscapeAnalysis
    from repro.lang import build_cfg, parse_program

    program = parse_program(
        """
        loop {
          choice {
            u = new h1
            v = u
          } or {
            $g = v
            w = $g
          }
          v.f = u
        }
        observe q
        """
    )
    analysis = EscapeAnalysis(EscSchema(["u", "v", "w"], ["f"]), frozenset({"h1"}))
    cfg = build_cfg(program)
    p = frozenset({"h1"})

    def kernel():
        return run_collecting(
            cfg,
            analysis.semantics.bound_step(p),
            analysis.initial_state(),
        )

    return _time_kernel(kernel)


def micro_forward_phase():
    """End-to-end forward runs over the smoke suite: each workload's
    client analyses the program under the bottom abstraction, three
    singletons and the full universe.  This is the path the compiled
    dispatch cache and the pre-resolved ``bound_step`` closures
    accelerate."""
    from repro.bench.harness import escape_setup, prepare, typestate_setup

    runs = []
    for name in SMOKE_BENCHMARKS:
        bench = prepare(name)
        clients = [escape_setup(bench)[0]]
        clients += [client for client, _queries in typestate_setup(bench)[:1]]
        for client in clients:
            space = client.analysis.param_space
            universe = sorted(getattr(space, "universe", None) or space.keys)
            abstractions = [frozenset()]
            abstractions += [frozenset({x}) for x in universe[:3]]
            abstractions.append(frozenset(universe))
            runs.append((client, abstractions))

    def kernel():
        for client, abstractions in runs:
            for p in abstractions:
                client.run_forward(p)

    return _time_kernel(kernel, repeats=3)


# -- scaled-down evaluation ---------------------------------------------------

SMOKE_BENCHMARKS = ("tsp", "elevator", "hedc")
SMOKE_ANALYSES = ("typestate", "escape")


def smoke_evaluation():
    """Serial and 2-worker evaluation of the two smallest benchmarks;
    returns timings plus forward-run cache-hit rates."""
    from repro.bench.harness import prepare
    from repro.bench.parallel import evaluate_many
    from repro.core.tracer import TracerConfig

    config = TracerConfig(k=5, max_iterations=30)
    instances = {name: prepare(name) for name in SMOKE_BENCHMARKS}

    started = time.perf_counter()
    serial = evaluate_many(instances, SMOKE_ANALYSES, config, jobs=1)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = evaluate_many(instances, SMOKE_ANALYSES, config, jobs=2)
    parallel_seconds = time.perf_counter() - started

    per_workload = {}
    for name in SMOKE_BENCHMARKS:
        for analysis in SMOKE_ANALYSES:
            result = serial[name][analysis]
            par = parallel[name][analysis]
            same = [
                (r.query_id, r.status.value, r.iterations)
                for r in result.records
            ] == [
                (r.query_id, r.status.value, r.iterations) for r in par.records
            ]
            per_workload[f"{name}/{analysis}"] = {
                "queries": result.query_count,
                "forward_hits": result.forward_hits,
                "forward_misses": result.forward_misses,
                "forward_hit_rate": round(result.forward_hit_rate, 4),
                "serial_matches_parallel": same,
            }
    return {
        "benchmarks": list(SMOKE_BENCHMARKS),
        "analyses": list(SMOKE_ANALYSES),
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds_jobs2": round(parallel_seconds, 4),
        "workloads": per_workload,
    }


def tracing_overhead():
    """Cost of the observability layer on one fixed workload.

    Times the ``tsp``/``typestate`` evaluation three ways: with no sink
    installed (the production default — instrumentation points reduce
    to one global read), with a :class:`NullSink` (records are built
    and discarded), and with a :class:`JsonlSink` (records are written
    to disk).  The deltas are recorded so successive PRs can spot
    instrumentation creep; the no-sink run must stay within a few
    percent of what the un-instrumented loop cost.
    """
    import tempfile

    from repro.bench.harness import evaluate_benchmark, prepare
    from repro.core.tracer import TracerConfig
    from repro.obs import trace as obs
    from repro.obs.sinks import JsonlSink, NullSink

    config = TracerConfig(k=5, max_iterations=30)
    bench = prepare("tsp")

    def run_plain():
        evaluate_benchmark(bench, "typestate", config)

    def run_null():
        with obs.tracing(NullSink()):
            evaluate_benchmark(bench, "typestate", config)

    trace_path = os.path.join(tempfile.gettempdir(), "bench_smoke_trace.jsonl")

    def run_jsonl():
        with obs.tracing(JsonlSink(trace_path)):
            evaluate_benchmark(bench, "typestate", config)

    baseline = _time_kernel(run_plain, repeats=3)
    null_sink = _time_kernel(run_null, repeats=3)
    jsonl_sink = _time_kernel(run_jsonl, repeats=3)
    with open(trace_path) as handle:
        trace_records = sum(1 for line in handle if line.strip())
    os.remove(trace_path)

    def overhead(seconds):
        return round(seconds / baseline - 1.0, 4) if baseline else 0.0

    return {
        "workload": "tsp/typestate",
        "no_sink_seconds": round(baseline, 6),
        "null_sink_seconds": round(null_sink, 6),
        "jsonl_sink_seconds": round(jsonl_sink, 6),
        "null_sink_overhead": overhead(null_sink),
        "jsonl_sink_overhead": overhead(jsonl_sink),
        "trace_records": trace_records,
    }


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    out_path = argv[0] if argv else os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_smoke.json",
    )
    started = time.perf_counter()
    report = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "micro_seconds": {
            "dnf_simplify": round(micro_dnf_simplify(), 6),
            "mincost_sat": round(micro_mincost_sat(), 6),
            "collecting_run": round(micro_collecting_run(), 6),
            "forward_phase": round(micro_forward_phase(), 6),
        },
        "evaluation": smoke_evaluation(),
        "tracing_overhead": tracing_overhead(),
    }
    report["total_seconds"] = round(time.perf_counter() - started, 4)
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"\nwrote {out_path} in {report['total_seconds']:.1f}s")
    budget_ok = report["total_seconds"] < 60
    print("within 60s budget" if budget_ok else "WARNING: exceeded 60s budget")
    return 0 if budget_ok else 1


if __name__ == "__main__":
    sys.exit(main())
