"""Perf smoke benchmark: micro kernels + a scaled-down evaluation.

Runs in well under a minute and writes a machine-readable
``BENCH_smoke.json`` (timestamped wall-clock timings and cache-hit
rates) so successive PRs leave a perf trajectory that can be diffed.

Usage::

    scripts/bench_smoke.sh            # or
    PYTHONPATH=src python benchmarks/bench_smoke.py [output.json]

The module is import-safe for pytest collection; all work happens in
:func:`main`.
"""

from __future__ import annotations

import json
import os
import platform
import random
import sys
import time
from dataclasses import dataclass


def _time_kernel(kernel, repeats=5):
    """Median-of-N wall time of ``kernel`` in seconds.

    The median (not the best) is what the trend gate compares across
    runs: it is robust to one-off scheduler hiccups in either
    direction, where best-of-N hides consistent slowdowns behind a
    single lucky run.  Cycle collection is paused while timing (the
    same hygiene ``timeit`` applies): a generation sweep landing inside
    one repeat would otherwise dominate the shorter kernels.
    """
    import gc

    times = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            started = time.perf_counter()
            kernel()
            times.append(time.perf_counter() - started)
    finally:
        if gc_was_enabled:
            gc.enable()
    times.sort()
    return times[len(times) // 2]


# -- micro kernels (self-contained versions of bench_micro's hot paths) -------


def micro_dnf_simplify():
    from repro.core.formula import Primitive, Theory, conj, disj, lit, nlit, simplify, to_dnf

    @dataclass(frozen=True)
    class Atom(Primitive):
        name: str

    class AtomTheory(Theory):
        def holds(self, prim, p, d):
            return True

        def is_param(self, prim):
            return False

    theory = AtomTheory()
    rng = random.Random(7)
    atoms = [lit(Atom(f"s{i}")) for i in range(8)] + [
        nlit(Atom(f"s{i}")) for i in range(8)
    ]
    formulas = [
        disj(*(conj(*rng.sample(atoms, rng.randint(2, 4))) for _ in range(12)))
        for _ in range(20)
    ]

    def kernel():
        return [simplify(to_dnf(f, theory), theory) for f in formulas]

    return _time_kernel(kernel)


def micro_mincost_sat():
    from repro.core.minsat import MinCostSat, NegLit, PosLit

    rng = random.Random(13)
    variables = [f"v{i}" for i in range(20)]
    clauses = [
        [
            (PosLit if rng.random() < 0.7 else NegLit)(rng.choice(variables))
            for _ in range(rng.randint(1, 3))
        ]
        for _ in range(40)
    ]

    def kernel():
        solver = MinCostSat()
        for clause in clauses:
            solver.add_clause(clause)
        return solver.solve()

    return _time_kernel(kernel)


def micro_collecting_run():
    from repro.dataflow import run_collecting
    from repro.escape import EscSchema, EscapeAnalysis
    from repro.lang import build_cfg, parse_program

    program = parse_program(
        """
        loop {
          choice {
            u = new h1
            v = u
          } or {
            $g = v
            w = $g
          }
          v.f = u
        }
        observe q
        """
    )
    analysis = EscapeAnalysis(EscSchema(["u", "v", "w"], ["f"]), frozenset({"h1"}))
    cfg = build_cfg(program)
    p = frozenset({"h1"})

    def kernel():
        return run_collecting(
            cfg,
            analysis.semantics.bound_step(p),
            analysis.initial_state(),
        )

    return _time_kernel(kernel)


def micro_forward_phase():
    """End-to-end forward runs over the smoke suite, timed under both
    engines.

    Each workload's escape, typestate and provenance clients analyse
    the program under the bottom abstraction, three singletons and the
    full universe — the path the compiled bitset kernel accelerates.
    Each engine gets one untimed warm-up pass first, so the compiled
    number measures steady-state execution (compilation is a one-time
    cost amortised by the per-command cache), matching how the TRACER
    loop reruns the forward phase hundreds of times per query.

    Returns a dict with median and min seconds per engine plus the
    ``speedup`` ratio of the mins.  The medians are what the trend
    gate tracks; the speedup uses the mins because the fastest repeat
    is the least-noisy estimate of each kernel's true cost (the same
    reasoning as ``timeit``'s), and a ratio of two medians taken on a
    jittery single-CPU box swings by double-digit percents.
    """
    from repro.bench.harness import escape_setup, prepare, typestate_setup
    from repro.lang.universe import collect_universe
    from repro.provenance.client import ProvenanceClient
    from repro.provenance.domain import PtSchema

    runs = []
    for name in SMOKE_BENCHMARKS:
        bench = prepare(name)
        clients = [escape_setup(bench)[0]]
        clients += [client for client, _queries in typestate_setup(bench)[:1]]
        universe = collect_universe(bench.inlined.program)
        clients.append(
            ProvenanceClient(
                bench.inlined.program,
                PtSchema(universe.variables),
                universe.sites,
            )
        )
        for client in clients:
            space = client.analysis.param_space
            keys = sorted(getattr(space, "universe", None) or space.keys)
            abstractions = [frozenset()]
            abstractions += [frozenset({x}) for x in keys[:3]]
            abstractions.append(frozenset(keys))
            runs.append((client, abstractions))

    def kernel():
        for client, abstractions in runs:
            for p in abstractions:
                client.run_forward(p)

    import gc

    def set_engine(engine):
        for client, _abstractions in runs:
            client.use_engine(engine)

    for engine in ("interpreted", "compiled"):
        set_engine(engine)
        kernel()  # warm-up: build dispatch tables / compile kernels

    # The two engines are timed *interleaved*, one repeat of each per
    # round, so a slow scheduler slice inflates both sides instead of
    # skewing the ratio.  Cycle collection is paused as in
    # :func:`_time_kernel`.
    interp_times, compiled_times = [], []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _round in range(9):
            set_engine("interpreted")
            started = time.perf_counter()
            kernel()
            interp_times.append(time.perf_counter() - started)
            set_engine("compiled")
            started = time.perf_counter()
            kernel()
            compiled_times.append(time.perf_counter() - started)
    finally:
        if gc_was_enabled:
            gc.enable()
    set_engine("interpreted")
    interp_times.sort()
    compiled_times.sort()
    return {
        "interpreted_seconds": interp_times[len(interp_times) // 2],
        "compiled_seconds": compiled_times[len(compiled_times) // 2],
        "interpreted_min_seconds": interp_times[0],
        "compiled_min_seconds": compiled_times[0],
        "speedup": interp_times[0] / compiled_times[0],
    }


# -- scaled-down evaluation ---------------------------------------------------

SMOKE_BENCHMARKS = ("tsp", "elevator", "hedc")
SMOKE_ANALYSES = ("typestate", "escape")


def smoke_evaluation():
    """Serial and 2-worker evaluation of the smoke benchmarks; returns
    timings plus forward-run cache-hit rates and pool-reuse counters.

    The 2-worker evaluation is run twice: the first (cold) pass pays
    the one-time worker spawn, the second (warm) pass reuses the
    process-wide shared pool — the steady state of any caller doing
    more than one evaluation per process, and the number the
    ``parallel ≤ serial`` regression gate watches.  Both are recorded.
    """
    from repro.bench.harness import prepare
    from repro.bench.parallel import evaluate_many
    from repro.core.tracer import TracerConfig
    from repro.robust.pool import pool_stats

    config = TracerConfig(k=5, max_iterations=30)
    instances = {name: prepare(name) for name in SMOKE_BENCHMARKS}

    started = time.perf_counter()
    serial = evaluate_many(instances, SMOKE_ANALYSES, config, jobs=1)
    serial_seconds = time.perf_counter() - started

    stats_before = pool_stats()
    started = time.perf_counter()
    evaluate_many(instances, SMOKE_ANALYSES, config, jobs=2)
    cold_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = evaluate_many(instances, SMOKE_ANALYSES, config, jobs=2)
    parallel_seconds = time.perf_counter() - started
    stats_after = pool_stats()
    pool_delta = {
        key: stats_after[key] - stats_before.get(key, 0)
        for key in stats_after
    }

    per_workload = {}
    for name in SMOKE_BENCHMARKS:
        for analysis in SMOKE_ANALYSES:
            result = serial[name][analysis]
            par = parallel[name][analysis]
            same = [
                (r.query_id, r.status.value, r.iterations)
                for r in result.records
            ] == [
                (r.query_id, r.status.value, r.iterations) for r in par.records
            ]
            per_workload[f"{name}/{analysis}"] = {
                "queries": result.query_count,
                "forward_hits": result.forward_hits,
                "forward_misses": result.forward_misses,
                "forward_hit_rate": round(result.forward_hit_rate, 4),
                "serial_matches_parallel": same,
            }
    return {
        "benchmarks": list(SMOKE_BENCHMARKS),
        "analyses": list(SMOKE_ANALYSES),
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds_jobs2": round(parallel_seconds, 4),
        "parallel_seconds_jobs2_cold": round(cold_seconds, 4),
        "pool": pool_delta,
        "workloads": per_workload,
    }


def scheduler_bench():
    """Wave pool vs lease scheduler on the smoke workloads, plus a
    faulted lease run (docs/ROBUSTNESS.md, "Leases and work stealing").

    Three 2-worker evaluations of the same workloads: the PR 4
    lock-step wave pool, the lease-based work-stealing scheduler, and
    the lease scheduler with one worker SIGKILLed on its first claim —
    the last one records how many leases were stolen and recovered
    through parent force-release/TTL expiry, and asserts the faulted
    run's records still match the clean one.  ``bench_trend`` watches
    the waves/leases wall-clock ratio for scheduler overhead creep.
    """
    from repro.bench.harness import prepare
    from repro.bench.parallel import (
        RunOptions,
        evaluate_many,
        last_scheduler_stats,
    )
    from repro.core.tracer import TracerConfig

    config = TracerConfig(k=5, max_iterations=30)
    instances = {name: prepare(name) for name in SMOKE_BENCHMARKS}

    def keys(results):
        return [
            (name, analysis, r.query_id, r.status.value, r.iterations)
            for name in SMOKE_BENCHMARKS
            for analysis in SMOKE_ANALYSES
            for r in results[name][analysis].records
        ]

    started = time.perf_counter()
    waves = evaluate_many(
        instances, SMOKE_ANALYSES, config, jobs=2,
        options=RunOptions(scheduler="waves"),
    )
    waves_seconds = time.perf_counter() - started

    started = time.perf_counter()
    leases = evaluate_many(
        instances, SMOKE_ANALYSES, config, jobs=2,
        options=RunOptions(scheduler="leases"),
    )
    leases_seconds = time.perf_counter() - started
    clean_stats = last_scheduler_stats()

    started = time.perf_counter()
    faulted = evaluate_many(
        instances, SMOKE_ANALYSES, config, jobs=2,
        options=RunOptions(
            scheduler="leases",
            heartbeat_interval=0.1,
            lease_ttl=1.0,
            worker_faults=(("scheduler.task:kill:at=1",), None),
        ),
    )
    faulted_seconds = time.perf_counter() - started
    faulted_stats = last_scheduler_stats()

    return {
        "benchmarks": list(SMOKE_BENCHMARKS),
        "analyses": list(SMOKE_ANALYSES),
        "waves_seconds_jobs2": round(waves_seconds, 4),
        "leases_seconds_jobs2": round(leases_seconds, 4),
        "leases_vs_waves": (
            round(leases_seconds / waves_seconds, 4) if waves_seconds else 0.0
        ),
        "clean": {
            "claims": clean_stats.get("claims"),
            "steals": clean_stats.get("steals"),
            "expiries": clean_stats.get("expiries"),
        },
        "faulted_kill_seconds": round(faulted_seconds, 4),
        "faulted": {
            "claims": faulted_stats.get("claims"),
            "steals": faulted_stats.get("steals"),
            "expiries": faulted_stats.get("expiries"),
            "respawns": faulted_stats.get("respawns"),
        },
        "leases_match_waves": keys(leases) == keys(waves),
        "faulted_matches_clean": keys(faulted) == keys(leases),
    }


def serve_warm():
    """Warm-vs-cold serving through the resident session + knowledge
    store (docs/SERVING.md).

    One fresh session with an empty store runs every smoke workload
    cold (recording each finished search), then a second fresh session
    re-opens the same store file and runs the identical workloads —
    the warm pass must answer every unit from the store's replay tier
    (store hit rate 1.0, zero forward fixpoint re-runs for proven
    queries) with verdicts identical to the cold pass.  Records the
    two wall times, the hit rate, and the equivalence bit the
    acceptance gate watches.
    """
    import tempfile

    from repro.core.tracer import TracerConfig
    from repro.serve.session import AnalysisSession
    from repro.serve.store import KnowledgeStore

    config = TracerConfig(k=5, max_iterations=30)
    store_path = os.path.join(
        tempfile.gettempdir(), f"bench_smoke_store_{os.getpid()}.jsonl"
    )
    if os.path.exists(store_path):
        os.remove(store_path)

    from repro.obs.metrics import Histogram

    def run_pass():
        # Per-unit latencies feed a fixed-bucket Histogram (the same
        # class the daemon scrapes), so the smoke report carries the
        # p50/p95/p99 shape, not just the total.
        histogram = Histogram("bench_unit_seconds")
        with KnowledgeStore(store_path) as store:
            session = AnalysisSession(store=store)
            verdicts = {}
            modes = []
            started = time.perf_counter()
            for name in SMOKE_BENCHMARKS:
                for analysis in SMOKE_ANALYSES:
                    unit_started = time.perf_counter()
                    for index, queries, result in session.solve_benchmark(
                        name, analysis, config
                    ):
                        now = time.perf_counter()
                        histogram.observe(now - unit_started)
                        unit_started = now
                        modes.append(result.mode)
                        for query in queries:
                            record = result.records[query]
                            verdicts[f"{name}/{analysis}/{index}/{query}"] = (
                                record.status.value,
                                record.iterations,
                            )
            seconds = time.perf_counter() - started
            hit_rate = store.hit_rate
        return seconds, verdicts, modes, hit_rate, histogram

    def latency_summary(histogram):
        return {
            "count": histogram.merged().count,
            "p50": round(histogram.quantile(0.50) or 0.0, 6),
            "p95": round(histogram.quantile(0.95) or 0.0, 6),
            "p99": round(histogram.quantile(0.99) or 0.0, 6),
        }

    cold_seconds, cold_verdicts, cold_modes, _, cold_hist = run_pass()
    warm_seconds, warm_verdicts, warm_modes, warm_hit_rate, warm_hist = (
        run_pass()
    )
    os.remove(store_path)
    return {
        "benchmarks": list(SMOKE_BENCHMARKS),
        "analyses": list(SMOKE_ANALYSES),
        "units": len(cold_modes),
        "queries": len(cold_verdicts),
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "speedup": round(cold_seconds / warm_seconds, 2) if warm_seconds else 0.0,
        "cold_modes": sorted(set(cold_modes)),
        "warm_modes": sorted(set(warm_modes)),
        "warm_store_hit_rate": round(warm_hit_rate, 4),
        "warm_matches_cold": warm_verdicts == cold_verdicts,
        "latency": {
            "cold": latency_summary(cold_hist),
            "warm": latency_summary(warm_hist),
        },
    }


def serve_burst():
    """Admission control under a concurrent burst (docs/SERVING.md,
    "Operating the daemon").

    Runs an in-thread daemon with a single execution slot and a
    shallow admission queue, then fires a burst of concurrent clients
    at it — more than the queue can hold.  Some requests are shed with
    a retryable ``overloaded`` envelope and succeed on a backoff
    retry; all of them must finish.  Records the burst wall time, the
    queue-wait percentiles, and the shed/retry counts so
    ``bench_trend`` can spot an admission-control regression (a queue
    that stops shedding, or queue waits growing across PRs).
    """
    import asyncio
    import tempfile
    import threading

    from repro.core.tracer import TracerConfig
    from repro.serve.client import ServeClient
    from repro.serve.server import AnalysisServer

    burst = 8
    workdir = tempfile.mkdtemp(prefix="bench_serve_burst_")
    server = AnalysisServer(
        os.path.join(workdir, "serve.sock"),
        store_path=os.path.join(workdir, "store.jsonl"),
        config=TracerConfig(k=5, max_iterations=30),
        queue_depth=2,
    )
    ready = threading.Event()

    def run():
        async def main():
            task = asyncio.ensure_future(server.run())
            while not (
                server._server is not None and server._server.is_serving()
            ):
                await asyncio.sleep(0.01)
            ready.set()
            await task

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    ready.wait(timeout=30)

    program = "u = new h1\nv = new h2\nv.f = u\nobserve pc\n"
    clients = [
        ServeClient(server.socket_path, timeout=120, retries=8)
        for _ in range(burst)
    ]
    outcomes = []

    def submit(index):
        # Distinct sources → distinct cold solves: every request does
        # real work, so the queue actually backs up.
        reply = clients[index].solve(
            "escape", program, query="pc", var="u", source=f"burst{index}"
        )
        outcomes.append(reply["ok"])

    started = time.perf_counter()
    threads = [
        threading.Thread(target=submit, args=(i,)) for i in range(burst)
    ]
    for worker in threads:
        worker.start()
    for worker in threads:
        worker.join(120)
    seconds = time.perf_counter() - started

    shed = server.telemetry.shed_counts()
    queue = server.telemetry.queue_seconds
    retries = sum(client.retries_made for client in clients)
    ServeClient(server.socket_path, timeout=30).shutdown()
    thread.join(timeout=30)
    return {
        "burst": burst,
        "queue_depth": 2,
        "completed": sum(1 for ok in outcomes if ok),
        "burst_seconds": round(seconds, 4),
        "shed": shed,
        "client_retries": retries,
        "queue_wait": {
            "count": queue.merged().count,
            "p50": round(queue.quantile(0.50) or 0.0, 6),
            "p95": round(queue.quantile(0.95) or 0.0, 6),
        },
    }


def tracing_overhead():
    """Cost of the observability layer on one fixed workload.

    Times the ``tsp``/``typestate`` evaluation three ways: with no sink
    installed (the production default — instrumentation points reduce
    to one global read), with a :class:`NullSink` (records are built
    and discarded), and with a :class:`JsonlSink` (records are written
    to disk).  The deltas are recorded so successive PRs can spot
    instrumentation creep; the no-sink run must stay within a few
    percent of what the un-instrumented loop cost.
    """
    import tempfile

    from repro.bench.harness import evaluate_benchmark, prepare
    from repro.core.tracer import TracerConfig
    from repro.obs import trace as obs
    from repro.obs.sinks import JsonlSink, NullSink

    config = TracerConfig(k=5, max_iterations=30)
    bench = prepare("tsp")

    def run_plain():
        evaluate_benchmark(bench, "typestate", config)

    def run_null():
        with obs.tracing(NullSink()):
            evaluate_benchmark(bench, "typestate", config)

    trace_path = os.path.join(tempfile.gettempdir(), "bench_smoke_trace.jsonl")

    def run_jsonl():
        with obs.tracing(JsonlSink(trace_path)):
            evaluate_benchmark(bench, "typestate", config)

    baseline = _time_kernel(run_plain, repeats=3)
    null_sink = _time_kernel(run_null, repeats=3)
    jsonl_sink = _time_kernel(run_jsonl, repeats=3)
    with open(trace_path) as handle:
        trace_records = sum(1 for line in handle if line.strip())
    os.remove(trace_path)

    def overhead(seconds):
        return round(seconds / baseline - 1.0, 4) if baseline else 0.0

    return {
        "workload": "tsp/typestate",
        "no_sink_seconds": round(baseline, 6),
        "null_sink_seconds": round(null_sink, 6),
        "jsonl_sink_seconds": round(jsonl_sink, 6),
        "null_sink_overhead": overhead(null_sink),
        "jsonl_sink_overhead": overhead(jsonl_sink),
        "trace_records": trace_records,
    }


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    out_path = argv[0] if argv else os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_smoke.json",
    )
    started = time.perf_counter()
    forward = micro_forward_phase()
    report = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "micro_seconds": {
            "dnf_simplify": round(micro_dnf_simplify(), 6),
            "mincost_sat": round(micro_mincost_sat(), 6),
            "collecting_run": round(micro_collecting_run(), 6),
            "forward_phase": round(forward["interpreted_seconds"], 6),
            "forward_phase_compiled": round(forward["compiled_seconds"], 6),
        },
        "forward_engine": {
            key: round(value, 6 if key != "speedup" else 2)
            for key, value in forward.items()
        },
        "evaluation": smoke_evaluation(),
        "scheduler": scheduler_bench(),
        "serve_warm": serve_warm(),
        "serve_burst": serve_burst(),
        "tracing_overhead": tracing_overhead(),
    }
    report["total_seconds"] = round(time.perf_counter() - started, 4)
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"\nwrote {out_path} in {report['total_seconds']:.1f}s")
    budget_ok = report["total_seconds"] < 60
    print("within 60s budget" if budget_ok else "WARNING: exceeded 60s budget")
    return 0 if budget_ok else 1


if __name__ == "__main__":
    sys.exit(main())
