"""Table 4 — cheapest-abstraction reuse across queries.

Regenerates the group statistics: queries proven with the *same*
cheapest abstraction form a group; the paper observes mostly small
groups (abstractions are query-specific) with a few large ones.  The
measured kernel is group-statistics computation over all records.
"""

from repro.bench.tables import render_table4
from repro.bench.suite import BENCHMARK_NAMES
from repro.core.stats import group_stats


def test_table4(benchmark, eval_results, aggregates, save_output):
    all_records = [
        record
        for name in BENCHMARK_NAMES
        for analysis in ("typestate", "escape")
        for record in eval_results[name][analysis].records
    ]
    benchmark(lambda: group_stats(all_records))
    save_output(
        "table4.txt",
        "Table 4: cheapest abstraction reuse for proven queries\n"
        + render_table4(aggregates),
    )
    # Shape check: group count grows with benchmark size, and the
    # average group stays small (cheapest abstractions tend to differ
    # across queries, Section 6).
    for name in BENCHMARK_NAMES:
        ts, esc = aggregates[name]
        if esc.proven:
            assert esc.groups.group_count >= 1
            assert esc.groups.average <= esc.proven
    small = aggregates["tsp"][1].groups.group_count
    large = aggregates["avrora"][1].groups.group_count
    assert small <= large
