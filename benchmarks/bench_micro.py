"""Micro-benchmarks of the hot kernels.

Not paper figures — these track the performance of the pieces every
TRACER iteration exercises: DNF conversion, subsumption simplification,
the beam, MinCostSAT, one full backward pass, and one collecting run.
"""

import random

import pytest

from repro.core.formula import conj, disj, drop_k, lit, nlit, simplify, to_dnf
from repro.core.meta import backward_trace
from repro.core.minsat import MinCostSat, NegLit, PosLit
from repro.dataflow import run_collecting
from repro.escape import EscSchema, EscapeAnalysis, EscapeMeta, VarIs, ESC
from repro.lang import build_cfg, parse_program
from tests.randprog import random_escape_program
from tests.toys import TOY, StateFact


def _formula(rng, size):
    atoms = [lit(StateFact(f"s{i}")) for i in range(8)] + [
        nlit(StateFact(f"s{i}")) for i in range(8)
    ]
    cubes = [
        conj(*rng.sample(atoms, rng.randint(2, 4))) for _ in range(size)
    ]
    return disj(*cubes)


def test_to_dnf_and_simplify(benchmark):
    rng = random.Random(7)
    formulas = [_formula(rng, 12) for _ in range(20)]

    def kernel():
        return [simplify(to_dnf(f, TOY), TOY) for f in formulas]

    result = benchmark(kernel)
    assert all(not dnf.is_false or True for dnf in result)


def test_drop_k_beam(benchmark):
    rng = random.Random(11)
    dnfs = [simplify(to_dnf(_formula(rng, 16), TOY), TOY) for _ in range(20)]
    dnfs = [d for d in dnfs if len(d.cubes) > 5]

    def kernel():
        return [drop_k(d, 5, lambda cube: True) for d in dnfs]

    result = benchmark(kernel)
    assert all(len(d.cubes) <= 5 for d in result)


def test_mincost_sat(benchmark):
    rng = random.Random(13)
    variables = [f"v{i}" for i in range(20)]
    clauses = []
    for _ in range(40):
        size = rng.randint(1, 3)
        clauses.append(
            [
                (PosLit if rng.random() < 0.7 else NegLit)(rng.choice(variables))
                for _ in range(size)
            ]
        )

    def kernel():
        solver = MinCostSat()
        for clause in clauses:
            solver.add_clause(clause)
        return solver.solve()

    benchmark(kernel)


def test_backward_pass(benchmark):
    rng = random.Random(17)
    from tests.randprog import FIELDS, SITES, VARS

    program = random_escape_program(rng, length=12)
    schema = EscSchema(VARS, FIELDS)
    analysis = EscapeAnalysis(schema, frozenset(SITES))
    meta = EscapeMeta(analysis)
    cfg = build_cfg(program)
    p = frozenset()
    result = run_collecting(
        cfg, lambda c, d: analysis.transfer(c, p, d), analysis.initial_state()
    )
    # Find some failing state to drive the backward pass.
    from repro.core.formula import evaluate, lit as mklit

    fail = mklit(VarIs("x", ESC))
    witness = None
    for node, state in result.states_before_observe("q"):
        if evaluate(fail, meta.theory, p, state):
            witness = result.trace_to(node, state)
            break
    if witness is None:
        pytest.skip("seed produced no counterexample")

    def kernel():
        return backward_trace(
            meta, analysis, witness, p, analysis.initial_state(), fail, k=5
        )

    benchmark(kernel)


def test_collecting_run(benchmark):
    program = parse_program(
        """
        loop {
          choice {
            u = new h1
            v = u
          } or {
            $g = v
            w = $g
          }
          v.f = u
        }
        observe q
        """
    )
    schema = EscSchema(["u", "v", "w"], ["f"])
    analysis = EscapeAnalysis(schema, frozenset({"h1"}))
    cfg = build_cfg(program)
    p = frozenset({"h1"})

    def kernel():
        return run_collecting(
            cfg,
            lambda c, d: analysis.transfer(c, p, d),
            analysis.initial_state(),
        )

    result = benchmark(kernel)
    assert result.exit_states()
