"""Figure 14 — distribution of cheapest-abstraction sizes.

Regenerates the histogram of cheapest-abstraction sizes for proven
thread-escape queries on the three largest benchmarks.  The paper's
observation: most queries are proven with 1-2 ``L``-mapped sites, with
a long, thin tail of queries needing many more.
"""

from repro.bench.figures import render_figure14
from repro.core.stats import size_distribution

LARGEST = ("antlr", "avrora", "lusearch")


def test_figure14(benchmark, eval_results, save_output):
    def histograms():
        return {
            name: size_distribution(eval_results[name]["escape"].records)
            for name in LARGEST
        }

    result = benchmark(histograms)
    save_output("figure14.txt", render_figure14(result))
    combined = {}
    for histogram in result.values():
        for size, count in histogram.items():
            combined[size] = combined.get(size, 0) + count
    assert combined, "no proven escape queries on the largest benchmarks"
    small = sum(count for size, count in combined.items() if size <= 2)
    assert small / sum(combined.values()) > 0.5
