"""Table 3 — cheapest-abstraction sizes for proven queries.

Regenerates the min/max/avg size of the cheapest abstraction per
benchmark per client analysis.  The measured kernel is the aggregation
itself over the shared evaluation records.
"""

from repro.bench.tables import render_table3
from repro.bench.suite import BENCHMARK_NAMES
from repro.core.stats import summarize_records


def test_table3(benchmark, eval_results, aggregates, save_output):
    def aggregate_all():
        return {
            name: (
                summarize_records(eval_results[name]["typestate"].records),
                summarize_records(eval_results[name]["escape"].records),
            )
            for name in BENCHMARK_NAMES
        }

    benchmark(aggregate_all)
    save_output(
        "table3.txt",
        "Table 3: cheapest abstraction sizes for proven queries\n"
        + render_table3(aggregates),
    )
    # Shape checks: thread-escape needs only 1-2 L-sites on average for
    # most benchmarks, but some queries need many more (the paper's
    # "up to 96 sites" tail); the type-state maximum grows with
    # benchmark size (call depth).
    esc_avgs = [
        aggregates[name][1].abstraction_sizes.average
        for name in BENCHMARK_NAMES
        if aggregates[name][1].abstraction_sizes is not None
    ]
    assert sum(1 for avg in esc_avgs if avg <= 2.5) >= len(esc_avgs) - 2
    esc_max = max(
        aggregates[name][1].abstraction_sizes.maximum
        for name in BENCHMARK_NAMES
        if aggregates[name][1].abstraction_sizes is not None
    )
    assert esc_max >= 3
