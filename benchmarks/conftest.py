"""Shared fixtures for the table/figure benchmarks.

The full evaluation (all 7 benchmarks x 2 client analyses) is computed
once per session and shared by every table/figure module; each module
additionally *measures* a representative slice of its own pipeline via
pytest-benchmark.  Rendered tables and figures are written to
``benchmarks/results/`` so they can be diffed against the paper.
"""

from __future__ import annotations

import os
from typing import Dict

import pytest

from repro.bench.harness import (
    BenchmarkInstance,
    EvalResult,
    evaluate_benchmark,
    prepare,
)
from repro.bench.suite import BENCHMARK_NAMES
from repro.core.stats import EvalAggregate, summarize_records

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def instances() -> Dict[str, BenchmarkInstance]:
    return {name: prepare(name) for name in BENCHMARK_NAMES}


@pytest.fixture(scope="session")
def eval_results(instances) -> Dict[str, Dict[str, EvalResult]]:
    return {
        name: {
            analysis: evaluate_benchmark(instances[name], analysis)
            for analysis in ("typestate", "escape")
        }
        for name in BENCHMARK_NAMES
    }


@pytest.fixture(scope="session")
def aggregates(eval_results):
    """Per benchmark: (typestate aggregate, escape aggregate)."""
    return {
        name: (
            summarize_records(eval_results[name]["typestate"].records),
            summarize_records(eval_results[name]["escape"].records),
        )
        for name in BENCHMARK_NAMES
    }


@pytest.fixture(scope="session")
def save_output():
    def save(filename: str, text: str) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        with open(os.path.join(RESULTS_DIR, filename), "w") as handle:
            handle.write(text + "\n")
        print()
        print(text)

    return save
