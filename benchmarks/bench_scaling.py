"""Scalability study: TRACER cost as program size grows.

Not a paper table — it quantifies the paper's qualitative scalability
claim on our substrate: the hedc profile is synthesized at increasing
size scales and all thread-escape queries are resolved; the study
reports program size, query count, wall time, and time per query.
TRACER's per-query cost should grow roughly with program size (forward
runs dominate), not explode combinatorially in the 2^N abstraction
family.
"""

import time

from repro.bench.harness import evaluate_benchmark, prepare
from repro.bench.suite import benchmark_scaled
from repro.core.stats import summarize_records
from repro.core.tracer import TracerConfig

SCALES = (0.5, 1.0, 1.5, 2.0)
CONFIG = TracerConfig(k=5, max_iterations=30)


def test_scaling_study(benchmark, save_output):
    rows = []
    measurements = {}
    for factor in SCALES:
        front = benchmark_scaled("hedc", factor)
        bench = prepare(f"hedc-x{factor}", front)
        started = time.perf_counter()
        result = evaluate_benchmark(bench, "escape", CONFIG)
        seconds = time.perf_counter() - started
        agg = summarize_records(result.records)
        measurements[factor] = (bench.metrics.inlined_commands, agg, seconds)
        per_query = seconds / agg.total if agg.total else 0.0
        rows.append(
            f"  x{factor:<4} {bench.metrics.inlined_commands:5d} commands  "
            f"{agg.total:3d} queries  {agg.resolved} resolved  "
            f"{seconds:6.2f}s total  {per_query * 1000:7.1f}ms/query"
        )
    benchmark.pedantic(
        lambda: evaluate_benchmark(
            prepare("hedc-x0.5", benchmark_scaled("hedc", 0.5)),
            "escape",
            CONFIG,
        ),
        rounds=1,
        iterations=1,
    )
    save_output(
        "scaling.txt",
        "Scalability study: hedc profile at growing sizes (thread-escape)\n"
        + "\n".join(rows),
    )
    # Program size must actually grow across the sweep ...
    sizes = [measurements[f][0] for f in SCALES]
    assert sizes[0] < sizes[-1]
    # ... and resolution stays high throughout (the largest scale
    # naturally grows an unresolved tail, as avrora does in Figure 12).
    for factor in SCALES:
        _cmds, agg, _secs = measurements[factor]
        assert agg.total > 0
        assert agg.resolved_fraction >= 0.75, factor
