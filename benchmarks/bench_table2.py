"""Table 2 — scalability: iteration counts and running times.

Regenerates the min/max/avg TRACER iterations for proven and impossible
queries (both analyses) and thread-escape running times.  The measured
kernel is one grouped thread-escape TRACER run.
"""

from repro.bench.harness import evaluate_benchmark
from repro.bench.tables import render_table2
from repro.bench.suite import BENCHMARK_NAMES


def test_table2(benchmark, instances, aggregates, save_output):
    benchmark.pedantic(
        lambda: evaluate_benchmark(instances["elevator"], "escape"),
        rounds=1,
        iterations=1,
    )
    save_output(
        "table2.txt", "Table 2: scalability measurements\n" + render_table2(aggregates)
    )
    # Shape checks: proven queries need at least one forward run; most
    # benchmarks resolve queries in under ten iterations on average
    # (the paper's headline scalability claim).
    under_ten = 0
    rows = 0
    for name in BENCHMARK_NAMES:
        for agg in aggregates[name]:
            for stats in (agg.iterations_proven, agg.iterations_impossible):
                if stats is None:
                    continue
                rows += 1
                assert stats.minimum >= 1
                if stats.average < 10:
                    under_ten += 1
    assert under_ten >= rows * 0.7
