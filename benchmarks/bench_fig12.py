"""Figure 12 — precision of TRACER on all queries.

Regenerates the per-benchmark proven/impossible/unresolved breakdown
for both client analyses.  The measured kernel is the complete grouped
TRACER evaluation (both analyses) on one mid-size benchmark.
"""

from repro.bench.harness import evaluate_benchmark
from repro.bench.figures import render_figure12
from repro.bench.suite import BENCHMARK_NAMES


def test_figure12(benchmark, instances, aggregates, save_output):
    bench = instances["hedc"]
    benchmark.pedantic(
        lambda: (
            evaluate_benchmark(bench, "typestate"),
            evaluate_benchmark(bench, "escape"),
        ),
        rounds=1,
        iterations=1,
    )
    save_output("figure12.txt", render_figure12(aggregates))
    # Shape checks against the paper's headline claims.
    total = proven = impossible = resolved = 0
    for name in BENCHMARK_NAMES:
        for agg in aggregates[name]:
            total += agg.total
            proven += agg.proven
            impossible += agg.impossible
            resolved += agg.resolved
    # "The technique finds the cheapest abstraction or shows that none
    # exists for 92.5% of queries posed on average" — high resolution.
    assert resolved / total > 0.85
    # Both outcome kinds occur in quantity.
    assert proven > 0 and impossible > 0
    # Type-state resolves everything (the unresolved bucket is a
    # thread-escape phenomenon, as in the paper).
    for name in BENCHMARK_NAMES:
        assert aggregates[name][0].exhausted == 0
