"""Figure 13 — effect of the beam width ``k`` on running time.

Regenerates the k-ablation: the thread-escape analysis is run with
``k = 1``, ``k = 5`` and ``k = 10`` on the four smallest benchmarks
(the paper's choice, because the extremes blow up on the larger ones).
``k = 1`` under-approximates aggressively (cheap traces, more
iterations); ``k = 10`` retains big formulas (fewer iterations, costly
traces); ``k = 5`` balances the two.
"""

import time

from repro.bench.harness import evaluate_benchmark
from repro.bench.figures import render_figure13
from repro.core.stats import summarize_records
from repro.core.tracer import TracerConfig

SMALLEST = ("tsp", "elevator", "hedc", "weblech")
KS = (1, 5, 10)


def test_figure13(benchmark, instances, save_output):
    timings = {}
    iterations = {}
    for name in SMALLEST:
        timings[name] = {}
        iterations[name] = {}
        for k in KS:
            config = TracerConfig(k=k, max_iterations=30)
            started = time.perf_counter()
            result = evaluate_benchmark(instances[name], "escape", config)
            timings[name][k] = time.perf_counter() - started
            agg = summarize_records(result.records)
            totals = [
                r.iterations for r in result.records
            ]
            iterations[name][k] = sum(totals) / len(totals) if totals else 0.0
    benchmark.pedantic(
        lambda: evaluate_benchmark(
            instances["tsp"], "escape", TracerConfig(k=5, max_iterations=30)
        ),
        rounds=1,
        iterations=1,
    )
    lines = [render_figure13(timings), "", "average iterations per query:"]
    for name in SMALLEST:
        per_k = "  ".join(f"k={k}: {iterations[name][k]:.1f}" for k in KS)
        lines.append(f"  {name:>10} {per_k}")
    save_output("figure13.txt", "\n".join(lines))
    # Shape check: aggressive under-approximation (k=1) costs more
    # TRACER iterations than k=5 on the bigger half of the subset.
    more_iters = sum(
        1 for name in SMALLEST if iterations[name][1] >= iterations[name][5]
    )
    assert more_iters >= len(SMALLEST) // 2
