"""Ablations of the design choices DESIGN.md calls out.

Not paper tables — these quantify our own implementation decisions:

* **query grouping** (Section 6): the grouped driver shares one
  forward run per group per CEGAR round; ablated against solving each
  query separately, counting *actual* forward-engine executions;
* **inlining vs interprocedural tabulation**: the same benchmarks
  analysed through context-cloning inlining (one CFG) and through the
  summary-based tabulation engine (procedure graph) must agree on
  every thread-escape query;
* **synthesized vs handwritten backward transfer functions**
  (Section 8 future work): TRACER runs with wp functions enumerated
  automatically from the forward analysis.  Per-step semantics is
  machine-checked equal (see tests/core/test_synthesis.py); the
  ablation measures the end-to-end effect of the different formula
  *factorings* on the beam search.
"""

import time

import pytest

from repro.bench.harness import escape_setup, prepare
from repro.core.stats import QueryStatus
from repro.core.tracer import Tracer, TracerConfig
from repro.escape.synth import synthesized_escape_meta

CONFIG = TracerConfig(k=5, max_iterations=30)


class _CountingClient:
    """Delegating client that counts forward-engine executions."""

    def __init__(self, client):
        self._client = client
        self.analysis = client.analysis
        self.meta = client.meta
        self.forward_runs = 0

    def fail_condition(self, query):
        return self._client.fail_condition(query)

    def counterexamples(self, queries, p):
        self.forward_runs += 1
        return self._client.counterexamples(queries, p)


@pytest.fixture(scope="module")
def elevator():
    return prepare("elevator")


def test_ablation_query_grouping(benchmark, elevator, save_output):
    client, queries = escape_setup(elevator)

    def grouped():
        counting = _CountingClient(client)
        records = Tracer(counting, CONFIG).solve_all(queries)
        return counting.forward_runs, records

    def ungrouped():
        counting = _CountingClient(client)
        tracer = Tracer(counting, CONFIG)
        records = {q: tracer.solve(q) for q in queries}
        return counting.forward_runs, records

    started = time.perf_counter()
    grouped_runs, grouped_records = grouped()
    grouped_seconds = time.perf_counter() - started
    started = time.perf_counter()
    ungrouped_runs, ungrouped_records = ungrouped()
    ungrouped_seconds = time.perf_counter() - started
    benchmark.pedantic(grouped, rounds=1, iterations=1)

    for query in queries:
        assert grouped_records[query].status == ungrouped_records[query].status
        assert (
            grouped_records[query].abstraction_cost
            == ungrouped_records[query].abstraction_cost
        )
    save_output(
        "ablation_grouping.txt",
        "Ablation: query grouping (elevator, thread-escape, "
        f"{len(queries)} queries)\n"
        f"  grouped driver:   {grouped_runs:4d} forward runs  {grouped_seconds:6.2f}s\n"
        f"  one-at-a-time:    {ungrouped_runs:4d} forward runs  {ungrouped_seconds:6.2f}s",
    )
    assert grouped_runs < ungrouped_runs


def test_ablation_synthesized_meta(benchmark, elevator, save_output):
    client, queries = escape_setup(elevator)

    def handwritten():
        return Tracer(client, CONFIG).solve_all(queries)

    started = time.perf_counter()
    hand_records = handwritten()
    hand_seconds = time.perf_counter() - started

    original_meta = client.meta
    client.meta = synthesized_escape_meta(client.analysis)
    try:
        started = time.perf_counter()
        synth_records = Tracer(client, CONFIG).solve_all(queries)
        synth_seconds = time.perf_counter() - started
    finally:
        client.meta = original_meta

    benchmark.pedantic(handwritten, rounds=1, iterations=1)

    both_resolved = [
        q
        for q in queries
        if hand_records[q].status is not QueryStatus.EXHAUSTED
        and synth_records[q].status is not QueryStatus.EXHAUSTED
    ]
    agree = sum(
        1
        for q in both_resolved
        if synth_records[q].status == hand_records[q].status
        and synth_records[q].abstraction_cost == hand_records[q].abstraction_cost
    )
    hand_iters = sum(r.iterations for r in hand_records.values())
    synth_iters = sum(r.iterations for r in synth_records.values())
    save_output(
        "ablation_synthesis.txt",
        "Ablation: synthesized vs handwritten backward functions "
        f"(elevator, thread-escape, {len(queries)} queries)\n"
        f"  handwritten: {hand_seconds:6.2f}s  {hand_iters:4d} total iterations\n"
        f"  synthesized: {synth_seconds:6.2f}s  {synth_iters:4d} total iterations\n"
        f"  agreement on resolved queries: {agree}/{len(both_resolved)}\n"
        "  (per-step wp semantics is identical; runtime differs because\n"
        "   synthesis pays an enumeration cost per (command, primitive)\n"
        "   and its cube factoring steers the dropk beam differently)",
    )
    # On every query both approaches resolve, they agree exactly.
    assert agree == len(both_resolved)


def test_ablation_interproc_engine(benchmark, elevator, save_output):
    from repro.bench.harness import escape_setup
    from repro.escape import EscSchema, EscapeClient, EscapeQuery
    from repro.frontend.procedures import lower_procedures

    inlined_client, queries = escape_setup(elevator)
    procs = lower_procedures(elevator.front, elevator.callgraph)
    schema = EscSchema(
        sorted(procs.variables | procs.query_vars), sorted(procs.fields)
    )
    proc_client = EscapeClient(procs.graph, schema, procs.sites)
    proc_queries = [
        EscapeQuery(pc, qvar)
        for pc, (_c, _m, _b, qvar) in sorted(procs.access_points.items())
    ]

    started = time.perf_counter()
    inlined_records = Tracer(inlined_client, CONFIG).solve_all(queries)
    inlined_seconds = time.perf_counter() - started
    started = time.perf_counter()
    proc_records = Tracer(proc_client, CONFIG).solve_all(proc_queries)
    proc_seconds = time.perf_counter() - started
    benchmark.pedantic(
        lambda: Tracer(proc_client, CONFIG).solve_all(proc_queries),
        rounds=1,
        iterations=1,
    )

    by_pc_inlined = {q.label: inlined_records[q] for q in queries}
    by_pc_proc = {q.label: proc_records[q] for q in proc_queries}
    assert set(by_pc_inlined) == set(by_pc_proc)
    for pc in by_pc_inlined:
        assert by_pc_inlined[pc].status == by_pc_proc[pc].status
        assert (
            by_pc_inlined[pc].abstraction_cost
            == by_pc_proc[pc].abstraction_cost
        )
    save_output(
        "ablation_interproc.txt",
        "Ablation: inlining vs interprocedural tabulation "
        f"(elevator, thread-escape, {len(queries)} queries)\n"
        f"  inlined program:   {elevator.inlined.command_count:4d} commands  "
        f"{inlined_seconds:6.2f}s\n"
        f"  procedure graph:   {procs.command_count:4d} commands  "
        f"{proc_seconds:6.2f}s\n"
        "  identical statuses and cheapest costs on every query",
    )
