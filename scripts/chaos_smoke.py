#!/usr/bin/env python
"""Fault-injection smoke run: chaos the solver, then kill a worker.

Exercises the robustness layer end to end (see docs/ROBUSTNESS.md):

1. the chaos matrix — every instrumented span site crossed with raise
   and delay actions against a lenient solver, asserting every query
   still resolves to a valid status;
2. a parallel evaluation in which a deterministic fault plan SIGKILLs
   one worker mid-unit, asserting the crash-surviving pool respawns,
   retries, and merges records identical to an un-faulted run.

Exit code 0 means every scenario held the contract.  Intended for the
non-gating CI chaos job; runs in well under a minute locally:

    PYTHONPATH=src python scripts/chaos_smoke.py
"""

import sys
import time

from repro.bench.harness import evaluate_benchmark, prepare
from repro.bench.parallel import RunOptions, evaluate_benchmark_parallel
from repro.core import Tracer, TracerConfig
from repro.core.stats import QueryStatus
from repro.lang import parse_program
from repro.robust.faults import FaultPlan, FaultRule, fault_scope
from repro.robust.pool import RetryPolicy
from repro.typestate import TypestateClient, TypestateQuery, file_automaton

PROGRAM = parse_program(
    """
    x = new File
    x.open()
    observe mid
    x.close()
    observe end
    """
)

QUERIES = [
    TypestateQuery("mid", frozenset({"opened"})),
    TypestateQuery("end", frozenset({"closed"})),
]

SITES = ("choose", "forward_run", "extract", "backward")
ACTIONS = (
    ("raise", {}),
    ("raise", {"error": "explosion"}),
    ("delay", {"delay": 0.01}),
)
VALID = {QueryStatus.PROVEN, QueryStatus.IMPOSSIBLE, QueryStatus.EXHAUSTED}


def chaos_matrix() -> int:
    config = TracerConfig(k=5, max_iterations=10, strict=False)
    failures = 0
    for site in SITES:
        for action, extra in ACTIONS:
            for times in (1, None):
                label = f"{site}:{action}:{extra or ''}:times={times}"
                client = TypestateClient(
                    PROGRAM, file_automaton(), "File", frozenset({"x"})
                )
                plan = FaultPlan([FaultRule(site, action, times=times, **extra)])
                try:
                    with fault_scope(plan):
                        records = Tracer(client, config).solve_all(QUERIES)
                except Exception as exc:  # the one thing that must not happen
                    print(f"FAIL {label}: solver crashed: {exc!r}")
                    failures += 1
                    continue
                bad = [r for r in records.values() if r.status not in VALID]
                if bad or set(records) != set(QUERIES):
                    print(f"FAIL {label}: invalid resolution {records}")
                    failures += 1
                else:
                    print(f"ok   {label}")
    return failures


def kill_one_worker() -> int:
    bench = prepare("elevator")
    config = TracerConfig(k=5, max_iterations=30)
    baseline = evaluate_benchmark(bench, "typestate", config, jobs=1)
    plan = FaultPlan(
        [FaultRule("unit:elevator:typestate:0", "kill", attempt=0)]
    )
    started = time.perf_counter()
    result = evaluate_benchmark_parallel(
        bench,
        "typestate",
        config,
        jobs=2,
        options=RunOptions(
            retry=RetryPolicy(max_attempts=3, backoff_seconds=0.1),
            fault_plan=plan,
        ),
    )
    wall = time.perf_counter() - started
    key = lambda r: (r.query_id, r.status, r.abstraction, r.iterations)
    if [key(r) for r in result.records] != [key(r) for r in baseline.records]:
        print("FAIL kill-one-worker: merged records diverged from baseline")
        return 1
    if result.failed_units:
        print(f"FAIL kill-one-worker: unexpected failed units {result.failed_units}")
        return 1
    print(
        f"ok   kill-one-worker: respawned and merged "
        f"{len(result.records)} records in {wall:.1f}s (degraded={result.degraded})"
    )
    return 0


def main() -> int:
    failures = chaos_matrix()
    failures += kill_one_worker()
    if failures:
        print(f"{failures} chaos scenario(s) failed")
        return 1
    print("all chaos scenarios held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
