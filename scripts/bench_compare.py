"""Dump deterministic TRACER results for before/after comparison.

Runs the smoke-sized benchmark suite for the typestate and escape
clients (forward cache on and off) plus a battery of seeded random
programs for all three clients (typestate, escape, provenance), and
writes per-query ``(status, abstraction, iterations)`` triples to a
JSON file.  Diffing two dumps verifies that a refactor of the transfer
semantics is behaviour-preserving::

    PYTHONPATH=src python scripts/bench_compare.py /tmp/before.json
    ... refactor ...
    PYTHONPATH=src python scripts/bench_compare.py /tmp/after.json
    diff /tmp/before.json /tmp/after.json

A second mode compares forward *engines* instead of revisions: with
``--engines interpreted,compiled`` the same workloads (all three
clients per benchmark, certificates on) are evaluated once per engine
within this process, and every per-query verdict, iteration count,
annotation digest, and certificate must be bit-identical across
engines — the cross-engine equivalence gate of the compiled bitset
kernel::

    PYTHONPATH=src python scripts/bench_compare.py \\
        --engines interpreted,compiled --benchmarks smoke

``--benchmarks all`` extends the sweep to the full seven-benchmark
paper suite (slower; the CI job runs the smoke scope).
"""

from __future__ import annotations

import argparse
import json
import random
import sys

from repro.bench.harness import prepare, evaluate_benchmark
from repro.core.tracer import Tracer, TracerConfig
from repro.escape.client import EscapeClient, EscapeQuery
from repro.escape.domain import EscSchema
from repro.provenance.client import ProvenanceClient, ProvenanceQuery
from repro.provenance.domain import PtSchema
from repro.typestate.automaton import file_automaton
from repro.typestate.client import TypestateClient, TypestateQuery
from tests.randprog import (
    FIELDS,
    SITES,
    VARS,
    random_escape_program,
    random_typestate_program,
)

from repro.bench.suite import BENCHMARK_NAMES

BENCHMARKS = ("tsp", "elevator", "hedc")
ANALYSES = ("typestate", "escape")


def _record(r):
    return {
        "query": r.query_id,
        "status": r.status.value,
        "abstraction": sorted(r.abstraction) if r.abstraction is not None else None,
        "iterations": r.iterations,
        "max_disjuncts": r.max_disjuncts,
    }


def suite_results(cache_size):
    config = TracerConfig(k=5, max_iterations=30, forward_cache_size=cache_size)
    out = {}
    for name in BENCHMARKS:
        bench = prepare(name)
        for analysis in ANALYSES:
            result = evaluate_benchmark(bench, analysis, config)
            out[f"{name}/{analysis}"] = [_record(r) for r in result.records]
    return out


def random_results(cache_size):
    config = TracerConfig(k=5, max_iterations=40, forward_cache_size=cache_size)
    out = {}
    for seed in range(40):
        rng = random.Random(seed)
        program = random_typestate_program(rng, length=7)
        client = TypestateClient(
            program, file_automaton(), "h1", frozenset(VARS)
        )
        query = TypestateQuery("q", frozenset({"closed", "opened"}))
        record = Tracer(client, config).solve(query)
        out[f"typestate/seed{seed}"] = [_record(record)]
    for seed in range(40):
        rng = random.Random(seed + 1000)
        program = random_escape_program(rng, length=7)
        schema = EscSchema(VARS, FIELDS)
        client = EscapeClient(program, schema, frozenset(SITES))
        records = [
            _record(Tracer(client, config).solve(EscapeQuery("q", v)))
            for v in VARS
        ]
        out[f"escape/seed{seed}"] = records
    for seed in range(40):
        rng = random.Random(seed + 2000)
        program = random_escape_program(rng, length=7)
        schema = PtSchema(VARS)
        client = ProvenanceClient(program, schema, frozenset(SITES))
        records = [
            _record(
                Tracer(client, config).solve(
                    ProvenanceQuery("q", v, frozenset({"h1"}))
                )
            )
            for v in VARS
        ]
        out[f"provenance/seed{seed}"] = records
    return out


def provenance_setup(bench):
    """A deterministic provenance workload for one suite benchmark:
    first observe labels x first variables, allowed = half the sites."""
    from repro.lang.universe import collect_universe

    universe = collect_universe(bench.inlined.program)
    client = ProvenanceClient(
        bench.inlined.program,
        PtSchema(universe.variables),
        universe.sites,
    )
    labels = sorted(client.cfg.observe_edges())[:2]
    variables = sorted(universe.variables)[:2]
    sites = sorted(universe.sites)
    allowed = frozenset(sites[: max(1, len(sites) // 2)])
    queries = [
        ProvenanceQuery(label, var, allowed)
        for label in labels
        for var in variables
    ]
    return client, queries


def engine_dump(engine, benchmarks):
    """Verdicts, digests, and certificates of every workload under one
    forward engine — the unit of the cross-engine identity check."""
    from repro.bench.parallel import RunOptions
    from repro.robust.certify import CertificateStore

    config = TracerConfig(k=5, max_iterations=30, engine=engine)
    out = {}
    for name in benchmarks:
        bench = prepare(name)
        for analysis in ANALYSES:
            result = evaluate_benchmark(
                bench, analysis, config, options=RunOptions(certify=True)
            )
            out[f"{name}/{analysis}"] = {
                "records": [_record(r) for r in result.records],
                "certificates": result.certificates,
            }
        client, queries = provenance_setup(bench)
        store = CertificateStore()
        solved = Tracer(client, config, certificates=store).solve_all(queries)
        out[f"{name}/provenance"] = {
            "records": [_record(solved[q]) for q in queries],
            "certificates": store.certificates,
        }
    return out


def _first_divergence(path, a, b):
    """Drill down to one differing leaf for a readable mismatch report."""
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            if a.get(key) != b.get(key):
                return _first_divergence(f"{path}.{key}", a.get(key), b.get(key))
    if isinstance(a, list) and isinstance(b, list):
        for i, (x, y) in enumerate(zip(a, b)):
            if x != y:
                return _first_divergence(f"{path}[{i}]", x, y)
        if len(a) != len(b):
            return f"{path}: length {len(a)} vs {len(b)}", None, None
    return path, a, b


def compare_engines(engines, benchmarks):
    """Evaluate every workload once per engine and require the results
    to be bit-identical.  Returns the number of mismatching workloads."""
    dumps = {}
    for engine in engines:
        # Round-trip through JSON so the comparison sees exactly what a
        # serialized dump would contain (tuples become lists, etc.).
        dumps[engine] = json.loads(
            json.dumps(engine_dump(engine, benchmarks), sort_keys=True)
        )
    reference = engines[0]
    mismatches = 0
    for other in engines[1:]:
        for key in sorted(dumps[reference]):
            if dumps[reference][key] == dumps[other][key]:
                continue
            mismatches += 1
            path, a, b = _first_divergence(
                key, dumps[reference][key], dumps[other][key]
            )
            print(f"MISMATCH {reference} vs {other} at {path}:")
            print(f"  {reference}: {a!r}")
            print(f"  {other}: {b!r}")
    workloads = len(dumps[reference])
    queries = sum(len(v["records"]) for v in dumps[reference].values())
    if mismatches == 0:
        print(
            f"engines {', '.join(engines)} bit-identical on "
            f"{workloads} workloads ({queries} queries, "
            f"verdicts + digests + certificates)"
        )
    return mismatches


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "out", nargs="?", default="bench_compare.json",
        help="output JSON path (dump mode)",
    )
    parser.add_argument(
        "--engines",
        help="comma-separated forward engines to cross-check "
        "(e.g. interpreted,compiled); switches to identity-compare mode",
    )
    parser.add_argument(
        "--benchmarks",
        choices=("smoke", "all"),
        default="smoke",
        help="suite scope for --engines mode (default smoke)",
    )
    args = parser.parse_args(argv)

    if args.engines:
        engines = [e.strip() for e in args.engines.split(",") if e.strip()]
        if len(engines) < 2:
            parser.error("--engines needs at least two engines")
        names = BENCHMARKS if args.benchmarks == "smoke" else BENCHMARK_NAMES
        mismatches = compare_engines(engines, names)
        return 1 if mismatches else 0

    dump = {
        "suite_cache_on": suite_results(64),
        "suite_cache_off": suite_results(None),
        "random_cache_on": random_results(64),
        "random_cache_off": random_results(None),
    }
    with open(args.out, "w") as handle:
        json.dump(dump, handle, indent=1, sort_keys=True)
        handle.write("\n")
    total = sum(len(v) for section in dump.values() for v in section.values())
    print(f"wrote {args.out}: {total} records")
    return 0


if __name__ == "__main__":
    sys.exit(main())
