"""Dump deterministic TRACER results for before/after comparison.

Runs the smoke-sized benchmark suite for the typestate and escape
clients (forward cache on and off) plus a battery of seeded random
programs for all three clients (typestate, escape, provenance), and
writes per-query ``(status, abstraction, iterations)`` triples to a
JSON file.  Diffing two dumps verifies that a refactor of the transfer
semantics is behaviour-preserving::

    PYTHONPATH=src python scripts/bench_compare.py /tmp/before.json
    ... refactor ...
    PYTHONPATH=src python scripts/bench_compare.py /tmp/after.json
    diff /tmp/before.json /tmp/after.json
"""

from __future__ import annotations

import json
import random
import sys

from repro.bench.harness import prepare, evaluate_benchmark
from repro.core.tracer import Tracer, TracerConfig
from repro.escape.client import EscapeClient, EscapeQuery
from repro.escape.domain import EscSchema
from repro.provenance.client import ProvenanceClient, ProvenanceQuery
from repro.provenance.domain import PtSchema
from repro.typestate.automaton import file_automaton
from repro.typestate.client import TypestateClient, TypestateQuery
from tests.randprog import (
    FIELDS,
    SITES,
    VARS,
    random_escape_program,
    random_typestate_program,
)

BENCHMARKS = ("tsp", "elevator", "hedc")
ANALYSES = ("typestate", "escape")


def _record(r):
    return {
        "query": r.query_id,
        "status": r.status.value,
        "abstraction": sorted(r.abstraction) if r.abstraction is not None else None,
        "iterations": r.iterations,
        "max_disjuncts": r.max_disjuncts,
    }


def suite_results(cache_size):
    config = TracerConfig(k=5, max_iterations=30, forward_cache_size=cache_size)
    out = {}
    for name in BENCHMARKS:
        bench = prepare(name)
        for analysis in ANALYSES:
            result = evaluate_benchmark(bench, analysis, config)
            out[f"{name}/{analysis}"] = [_record(r) for r in result.records]
    return out


def random_results(cache_size):
    config = TracerConfig(k=5, max_iterations=40, forward_cache_size=cache_size)
    out = {}
    for seed in range(40):
        rng = random.Random(seed)
        program = random_typestate_program(rng, length=7)
        client = TypestateClient(
            program, file_automaton(), "h1", frozenset(VARS)
        )
        query = TypestateQuery("q", frozenset({"closed", "opened"}))
        record = Tracer(client, config).solve(query)
        out[f"typestate/seed{seed}"] = [_record(record)]
    for seed in range(40):
        rng = random.Random(seed + 1000)
        program = random_escape_program(rng, length=7)
        schema = EscSchema(VARS, FIELDS)
        client = EscapeClient(program, schema, frozenset(SITES))
        records = [
            _record(Tracer(client, config).solve(EscapeQuery("q", v)))
            for v in VARS
        ]
        out[f"escape/seed{seed}"] = records
    for seed in range(40):
        rng = random.Random(seed + 2000)
        program = random_escape_program(rng, length=7)
        schema = PtSchema(VARS)
        client = ProvenanceClient(program, schema, frozenset(SITES))
        records = [
            _record(
                Tracer(client, config).solve(
                    ProvenanceQuery("q", v, frozenset({"h1"}))
                )
            )
            for v in VARS
        ]
        out[f"provenance/seed{seed}"] = records
    return out


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    out_path = argv[0] if argv else "bench_compare.json"
    dump = {
        "suite_cache_on": suite_results(64),
        "suite_cache_off": suite_results(None),
        "random_cache_on": random_results(64),
        "random_cache_off": random_results(None),
    }
    with open(out_path, "w") as handle:
        json.dump(dump, handle, indent=1, sort_keys=True)
        handle.write("\n")
    total = sum(len(v) for section in dump.values() for v in section.values())
    print(f"wrote {out_path}: {total} records")
    return 0


if __name__ == "__main__":
    sys.exit(main())
