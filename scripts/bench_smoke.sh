#!/bin/sh
# Perf smoke benchmark: micro kernels + a scaled-down evaluation in
# well under a minute.  Writes BENCH_smoke.json at the repo root (or
# to $1 if given).
set -eu
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
PYTHONPATH="$ROOT/src${PYTHONPATH:+:$PYTHONPATH}" \
    exec python "$ROOT/benchmarks/bench_smoke.py" "$@"
