"""Serve smoke check: the daemon warm-starts repeat submissions.

Starts a ``repro serve`` daemon with a fresh knowledge store, submits
every paper benchmark twice, and asserts the serving contract
(docs/SERVING.md):

1. the first pass runs cold (the store is empty) and records every
   finished search;
2. the second pass answers every unit from the store's replay tier —
   ``store hits > 0``, every unit mode ``"replay"``, and per-query
   verdicts identical to the first pass;
3. daemon verdicts match a one-shot in-process evaluation of the same
   workloads under the same config (the daemon is an optimisation,
   never a different answer);
4. the telemetry contract (docs/OBSERVABILITY.md): the ``metrics`` op
   returns parseable Prometheus text whose warm-tier counters match
   the two passes and whose latency histograms saw every request,
   ``repro top --once`` renders a snapshot frame against the live
   daemon, and the daemon's ``--trace-out`` stream validates.

Exit code 0 on success, 1 with a diagnostic on any violation::

    PYTHONPATH=src python scripts/serve_smoke.py [--analysis typestate]
                                                 [--artifacts DIR]

``--artifacts DIR`` copies the daemon trace and the final metrics
scrape there (CI uploads them).
"""

from __future__ import annotations

import argparse
import os
import shutil
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.bench.suite import BENCHMARK_NAMES  # noqa: E402
from repro.obs.export import parse_prometheus  # noqa: E402
from repro.serve.client import ServeClient, ServeError  # noqa: E402

MAX_ITERATIONS = 30


def start_daemon(
    socket_path: str, store_path: str, trace_path: str, metrics_path: str
) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    daemon = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--socket", socket_path,
            "--store", store_path,
            "--trace-out", trace_path,
            "--metrics-out", metrics_path,
            "--metrics-interval", "1",
            "--max-iterations", str(MAX_ITERATIONS),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if daemon.poll() is not None:
            stderr = daemon.stderr.read().decode()
            raise RuntimeError(f"daemon died on startup:\n{stderr}")
        if os.path.exists(socket_path):
            try:
                ServeClient(socket_path, timeout=5).ping()
                return daemon
            except ServeError:
                pass
        time.sleep(0.1)
    daemon.kill()
    raise RuntimeError("daemon did not come up within 30s")


def submit_pass(client: ServeClient, analysis: str):
    """One submission sweep; returns (verdicts by qid, modes, hits,
    units)."""
    verdicts = {}
    modes = []
    hits = 0
    units = 0
    for name in BENCHMARK_NAMES:
        reply = client.solve_benchmark(name, analysis)
        modes.extend(reply["modes"])
        hits += reply["store_hits"]
        units += reply["units"]
        for entry in reply["results"]:
            verdicts[f"{name}:{entry['query']}"] = entry["verdict"]
    return verdicts, modes, hits, units


def one_shot_verdicts(analysis: str):
    """The same workloads evaluated in-process with no daemon and no
    store — the baseline the served verdicts must match."""
    from repro.bench.harness import evaluate_benchmark, prepare
    from repro.core.tracer import TracerConfig

    # Mirror the daemon's request config: `repro serve` defaults plus
    # the --max-iterations passed above (strict and engine are the
    # TracerConfig defaults on both sides).
    config = TracerConfig(k=5, max_iterations=MAX_ITERATIONS)
    verdicts = {}
    for name in BENCHMARK_NAMES:
        result = evaluate_benchmark(prepare(name), analysis, config)
        for record in result.records:
            verdicts[f"{name}:{record.query_id}"] = record.status.value
    return verdicts


def counter_total(parsed, name, **match):
    total = 0.0
    for labels, value in parsed.get(name, []):
        if all(labels.get(k) == str(v) for k, v in match.items()):
            total += value
    return total


def check_metrics(parsed, cold_units, warm_units, failures):
    """The scraped exposition reflects the two passes."""
    cold_count = counter_total(parsed, "repro_warm_tier_total", tier="cold")
    replay_count = counter_total(
        parsed, "repro_warm_tier_total", tier="replay"
    )
    if cold_count != cold_units:
        failures.append(
            f"metrics: cold-tier counter {cold_count}, "
            f"expected {cold_units}"
        )
    if replay_count != warm_units:
        failures.append(
            f"metrics: replay-tier counter {replay_count}, "
            f"expected {warm_units}"
        )
    latency_seen = counter_total(
        parsed, "repro_request_seconds_count", op="solve-bench"
    )
    expected = 2 * len(BENCHMARK_NAMES)
    if latency_seen < expected:
        failures.append(
            f"metrics: latency histogram saw {latency_seen} solve-bench "
            f"requests, expected >= {expected}"
        )
    if "repro_request_queue_seconds_bucket" not in parsed:
        failures.append("metrics: queue-wait histogram missing")
    if "repro_cache_hits_total" not in parsed:
        failures.append("metrics: cache counters missing from exposition")


def run_cli(args, what, failures):
    """Run a repro CLI subcommand; returns its stdout ('' on failure)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=env,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        failures.append(
            f"{what} exited {proc.returncode}: {proc.stderr.strip()[:300]}"
        )
        return ""
    return proc.stdout


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--analysis", default="typestate")
    parser.add_argument(
        "--artifacts", metavar="DIR",
        help="copy the daemon trace and metrics scrape here",
    )
    args = parser.parse_args(argv)

    workdir = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    socket_path = os.path.join(workdir, "serve.sock")
    store_path = os.path.join(workdir, "store.jsonl")
    trace_path = os.path.join(workdir, "serve-trace.jsonl")
    metrics_out_path = os.path.join(workdir, "serve-metrics.prom")
    failures = []

    daemon = start_daemon(
        socket_path, store_path, trace_path, metrics_out_path
    )
    client = ServeClient(socket_path)
    top_frame = ""
    metrics_text = ""
    try:
        cold, cold_modes, cold_hits, cold_units = submit_pass(
            client, args.analysis
        )
        warm, warm_modes, warm_hits, warm_units = submit_pass(
            client, args.analysis
        )
        stats = client.stats()
        metrics_text = client.metrics()["prometheus"]
        top_frame = run_cli(
            ["top", "--socket", socket_path, "--once"],
            "repro top --once",
            failures,
        )
    finally:
        try:
            client.shutdown()
            daemon.wait(timeout=15)
        except (ServeError, subprocess.TimeoutExpired):
            daemon.kill()

    print(f"{len(BENCHMARK_NAMES)} benchmarks x {args.analysis}: "
          f"{len(cold)} queries")
    print(f"cold pass: modes={sorted(set(cold_modes))} hits={cold_hits}")
    print(f"warm pass: modes={sorted(set(warm_modes))} hits={warm_hits}")
    print(f"store: {stats.get('store')}")

    if cold_hits != 0:
        failures.append(f"cold pass hit the store ({cold_hits} hits)")
    if set(cold_modes) != {"cold"}:
        failures.append(f"cold pass modes {sorted(set(cold_modes))}, "
                        "expected all 'cold'")
    if warm_hits == 0:
        failures.append("warm pass had zero store hits")
    if set(warm_modes) != {"replay"}:
        failures.append(f"warm pass modes {sorted(set(warm_modes))}, "
                        "expected all 'replay'")
    if warm != cold:
        diff = {k for k in set(cold) | set(warm) if cold.get(k) != warm.get(k)}
        failures.append(f"warm verdicts differ from cold: {sorted(diff)[:5]}")

    # -- telemetry: scraped counters match the two passes ------------------
    parsed = parse_prometheus(metrics_text)
    check_metrics(parsed, cold_units, warm_units, failures)
    if not failures:
        print(
            f"metrics scrape OK: tiers cold={cold_units} "
            f"replay={warm_units}, {len(parsed)} sample families"
        )

    # -- repro top rendered a live frame -----------------------------------
    if top_frame and "repro top" not in top_frame:
        failures.append(f"repro top frame looks wrong: {top_frame[:200]!r}")
    elif top_frame:
        print("-- repro top --once frame " + "-" * 34)
        print(top_frame.rstrip())
        print("-" * 60)

    # -- the daemon trace validates (after shutdown closed the sink) -------
    validate_out = run_cli(
        ["trace", "validate", trace_path], "repro trace validate", failures
    )
    if validate_out:
        print(f"daemon trace: {validate_out.strip()}")
    if not os.path.exists(metrics_out_path):
        failures.append("--metrics-out file was never written")

    baseline = one_shot_verdicts(args.analysis)
    if cold != baseline:
        diff = {
            k for k in set(cold) | set(baseline)
            if cold.get(k) != baseline.get(k)
        }
        failures.append(
            f"served verdicts differ from one-shot: {sorted(diff)[:5]}"
        )
    else:
        print("served verdicts match one-shot in-process evaluation")

    if args.artifacts:
        os.makedirs(args.artifacts, exist_ok=True)
        shutil.copy(trace_path, os.path.join(
            args.artifacts, "serve-trace.jsonl"
        ))
        with open(os.path.join(
            args.artifacts, "serve-metrics.prom"
        ), "w") as handle:
            handle.write(metrics_text)
        print(f"artifacts copied to {args.artifacts}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("serve smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
