"""Serve smoke check: the daemon warm-starts repeat submissions.

Starts a ``repro serve`` daemon with a fresh knowledge store, submits
every paper benchmark twice, and asserts the serving contract
(docs/SERVING.md):

1. the first pass runs cold (the store is empty) and records every
   finished search;
2. the second pass answers every unit from the store's replay tier —
   ``store hits > 0``, every unit mode ``"replay"``, and per-query
   verdicts identical to the first pass;
3. daemon verdicts match a one-shot in-process evaluation of the same
   workloads under the same config (the daemon is an optimisation,
   never a different answer).

Exit code 0 on success, 1 with a diagnostic on any violation::

    PYTHONPATH=src python scripts/serve_smoke.py [--analysis typestate]
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.bench.suite import BENCHMARK_NAMES  # noqa: E402
from repro.serve.client import ServeClient, ServeError  # noqa: E402

MAX_ITERATIONS = 30


def start_daemon(socket_path: str, store_path: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    daemon = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--socket", socket_path,
            "--store", store_path,
            "--max-iterations", str(MAX_ITERATIONS),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if daemon.poll() is not None:
            stderr = daemon.stderr.read().decode()
            raise RuntimeError(f"daemon died on startup:\n{stderr}")
        if os.path.exists(socket_path):
            try:
                ServeClient(socket_path, timeout=5).ping()
                return daemon
            except ServeError:
                pass
        time.sleep(0.1)
    daemon.kill()
    raise RuntimeError("daemon did not come up within 30s")


def submit_pass(client: ServeClient, analysis: str):
    """One submission sweep; returns (verdicts by qid, modes, hits)."""
    verdicts = {}
    modes = []
    hits = 0
    for name in BENCHMARK_NAMES:
        reply = client.solve_benchmark(name, analysis)
        modes.extend(reply["modes"])
        hits += reply["store_hits"]
        for entry in reply["results"]:
            verdicts[f"{name}:{entry['query']}"] = entry["verdict"]
    return verdicts, modes, hits


def one_shot_verdicts(analysis: str):
    """The same workloads evaluated in-process with no daemon and no
    store — the baseline the served verdicts must match."""
    from repro.bench.harness import evaluate_benchmark, prepare
    from repro.core.tracer import TracerConfig

    # Mirror the daemon's request config: `repro serve` defaults plus
    # the --max-iterations passed above (strict and engine are the
    # TracerConfig defaults on both sides).
    config = TracerConfig(k=5, max_iterations=MAX_ITERATIONS)
    verdicts = {}
    for name in BENCHMARK_NAMES:
        result = evaluate_benchmark(prepare(name), analysis, config)
        for record in result.records:
            verdicts[f"{name}:{record.query_id}"] = record.status.value
    return verdicts


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--analysis", default="typestate")
    args = parser.parse_args(argv)

    workdir = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    socket_path = os.path.join(workdir, "serve.sock")
    store_path = os.path.join(workdir, "store.jsonl")
    failures = []

    daemon = start_daemon(socket_path, store_path)
    client = ServeClient(socket_path)
    try:
        cold, cold_modes, cold_hits = submit_pass(client, args.analysis)
        warm, warm_modes, warm_hits = submit_pass(client, args.analysis)
        stats = client.stats()
    finally:
        try:
            client.shutdown()
            daemon.wait(timeout=15)
        except (ServeError, subprocess.TimeoutExpired):
            daemon.kill()

    print(f"{len(BENCHMARK_NAMES)} benchmarks x {args.analysis}: "
          f"{len(cold)} queries")
    print(f"cold pass: modes={sorted(set(cold_modes))} hits={cold_hits}")
    print(f"warm pass: modes={sorted(set(warm_modes))} hits={warm_hits}")
    print(f"store: {stats.get('store')}")

    if cold_hits != 0:
        failures.append(f"cold pass hit the store ({cold_hits} hits)")
    if set(cold_modes) != {"cold"}:
        failures.append(f"cold pass modes {sorted(set(cold_modes))}, "
                        "expected all 'cold'")
    if warm_hits == 0:
        failures.append("warm pass had zero store hits")
    if set(warm_modes) != {"replay"}:
        failures.append(f"warm pass modes {sorted(set(warm_modes))}, "
                        "expected all 'replay'")
    if warm != cold:
        diff = {k for k in set(cold) | set(warm) if cold.get(k) != warm.get(k)}
        failures.append(f"warm verdicts differ from cold: {sorted(diff)[:5]}")

    baseline = one_shot_verdicts(args.analysis)
    if cold != baseline:
        diff = {
            k for k in set(cold) | set(baseline)
            if cold.get(k) != baseline.get(k)
        }
        failures.append(
            f"served verdicts differ from one-shot: {sorted(diff)[:5]}"
        )
    else:
        print("served verdicts match one-shot in-process evaluation")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("serve smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
