"""Track perf-smoke results over time and gate on regressions.

Reads the latest ``BENCH_smoke.json`` (written by
``benchmarks/bench_smoke.py``), appends a compact entry to
``BENCH_history.jsonl``, and compares the new run's ``micro_seconds``
medians against the previous history entry.  Any micro kernel more
than ``--threshold`` (default 25%) slower than last time is reported
as a regression::

    PYTHONPATH=src python benchmarks/bench_smoke.py
    PYTHONPATH=src python scripts/bench_trend.py          # warn only
    PYTHONPATH=src python scripts/bench_trend.py --gate   # exit 1

Without ``--gate`` regressions only warn — the intended rollout is to
run warn-only for a couple of PRs to accumulate history (and observe
the noise floor of the CI machines) before flipping the gate on.

The history file is JSONL so CI can append without rewriting: each
line is self-contained ``{timestamp, python, micro_seconds, speedup,
evaluation}``.  The comparison is entry-vs-previous-entry, not
entry-vs-best-ever, so a slow machine day shifts the baseline instead
of permanently failing every later run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_REPORT = os.path.join(REPO_ROOT, "BENCH_smoke.json")
DEFAULT_HISTORY = os.path.join(REPO_ROOT, "BENCH_history.jsonl")


def history_entry(report: dict) -> dict:
    """The compact history line distilled from one smoke report.

    Every section read is ``.get``-tolerant: sections accrete over
    PRs, so older reports (and older history lines) legitimately lack
    newer ones — a missing section means "not measured", never an
    error.
    """
    evaluation = report.get("evaluation", {})
    serve = report.get("serve_warm", {})
    latency = serve.get("latency", {})
    entry = {
        "timestamp": report.get("timestamp"),
        "python": report.get("python"),
        "micro_seconds": report.get("micro_seconds", {}),
        "forward_speedup": report.get("forward_engine", {}).get("speedup"),
        "serial_seconds": evaluation.get("serial_seconds"),
        "parallel_seconds_jobs2": evaluation.get("parallel_seconds_jobs2"),
    }
    if serve:
        entry["serve_warm"] = {
            "speedup": serve.get("speedup"),
            "warm_seconds": serve.get("warm_seconds"),
            "warm_p50": latency.get("warm", {}).get("p50"),
            "warm_p95": latency.get("warm", {}).get("p95"),
            "warm_p99": latency.get("warm", {}).get("p99"),
        }
    burst = report.get("serve_burst", {})
    if burst:
        entry["serve_burst"] = {
            "burst_seconds": burst.get("burst_seconds"),
            "completed": burst.get("completed"),
            "shed": sum((burst.get("shed") or {}).values()),
            "client_retries": burst.get("client_retries"),
            "queue_p95": burst.get("queue_wait", {}).get("p95"),
        }
    scheduler = report.get("scheduler", {})
    if scheduler:
        entry["scheduler"] = {
            "waves_seconds_jobs2": scheduler.get("waves_seconds_jobs2"),
            "leases_seconds_jobs2": scheduler.get("leases_seconds_jobs2"),
            "leases_vs_waves": scheduler.get("leases_vs_waves"),
            "faulted_steals": (scheduler.get("faulted") or {}).get("steals"),
            "faulted_expiries": (
                (scheduler.get("faulted") or {}).get("expiries")
            ),
        }
    return entry


def load_history(path: str) -> list:
    if not os.path.exists(path):
        return []
    entries = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries


def compare(previous: dict, current: dict, threshold: float) -> list:
    """Regressions of ``current`` vs ``previous``: a list of
    ``(kernel, old_seconds, new_seconds, ratio)`` rows where the new
    median exceeds the old by more than ``threshold``."""
    regressions = []
    old_micros = previous.get("micro_seconds") or {}
    for kernel, new_seconds in sorted(
        (current.get("micro_seconds") or {}).items()
    ):
        old_seconds = old_micros.get(kernel)
        if not old_seconds or not new_seconds:
            continue  # new kernel, or a zero reading — nothing to compare
        ratio = new_seconds / old_seconds
        if ratio > 1.0 + threshold:
            regressions.append((kernel, old_seconds, new_seconds, ratio))
    # Serve-layer warm latency: only comparable when both entries carry
    # the section (it first appeared after the earliest history lines).
    old_warm = (previous.get("serve_warm") or {}).get("warm_seconds")
    new_warm = (current.get("serve_warm") or {}).get("warm_seconds")
    if old_warm and new_warm:
        ratio = new_warm / old_warm
        if ratio > 1.0 + threshold:
            regressions.append(
                ("serve_warm_seconds", old_warm, new_warm, ratio)
            )
    return regressions


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report", default=DEFAULT_REPORT, help="BENCH_smoke.json to ingest"
    )
    parser.add_argument(
        "--history",
        default=DEFAULT_HISTORY,
        help="JSONL history file to append to",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fractional slowdown tolerated before reporting (default 0.25)",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help="exit non-zero on regression (default: warn only)",
    )
    args = parser.parse_args(argv)

    with open(args.report) as handle:
        report = json.load(handle)
    entry = history_entry(report)
    history = load_history(args.history)

    regressions = []
    if history:
        regressions = compare(history[-1], entry, args.threshold)

    with open(args.history, "a") as handle:
        handle.write(json.dumps(entry, sort_keys=True))
        handle.write("\n")

    print(
        f"history: {len(history) + 1} entries in "
        f"{os.path.relpath(args.history, REPO_ROOT)}"
    )
    for kernel, seconds in sorted((entry.get("micro_seconds") or {}).items()):
        print(f"  {kernel:<24} {seconds * 1000:9.3f} ms")
    if entry.get("forward_speedup") is not None:
        print(f"  {'forward speedup':<24} {entry['forward_speedup']:9.2f} x")
    serve = entry.get("serve_warm") or {}
    if serve.get("warm_seconds") is not None:
        print(
            f"  {'serve warm pass':<24} "
            f"{serve['warm_seconds'] * 1000:9.3f} ms"
            + (
                f"  (p95 {serve['warm_p95'] * 1000:.3f} ms)"
                if serve.get("warm_p95") is not None
                else ""
            )
        )

    if not history:
        print("no previous entry — baseline recorded, nothing to compare")
        return 0
    if not regressions:
        print(
            f"no regressions over {args.threshold:.0%} vs previous entry "
            f"({history[-1].get('timestamp')})"
        )
        return 0
    for kernel, old, new, ratio in regressions:
        print(
            f"REGRESSION {kernel}: {old * 1000:.3f} ms -> "
            f"{new * 1000:.3f} ms ({ratio - 1.0:+.0%})"
        )
    if args.gate:
        return 1
    print("(warn only; pass --gate to fail the build)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
