#!/usr/bin/env python
"""Distributed chaos run: the lease scheduler under injected failures.

Evaluates the full suite (7 benchmarks x 3 analyses) on the
lease-based work-stealing scheduler with three workers while faults
fly — one worker SIGKILLs itself mid-task, one hangs permanently
(alive, silent) so its lease has to expire, and a global fault rule
makes every first attempt of a long-enough task raise once — and
asserts the contract of docs/ROBUSTNESS.md, "Leases and work
stealing":

1. every unit completes through lease reclamation (no failed units);
2. verdicts, records, and certificates are bit-identical to the
   serial oracle (one worker, same query-group decomposition, clause
   bus off);
3. lease_stolen / lease_expired events fired (the recovery actually
   happened — a run where nothing died proves nothing);
4. the clause bus carried learned rounds across attempts: with the
   bus on, clause_imported events fire and strictly fewer synthesis
   rounds run live than with --no-clause-bus, on the same faults;
5. the lease log itself passes the structural audit
   (:func:`repro.robust.leases.verify_lease_log`).

Exit code 0 means every assertion held.  Intended for the gating CI
chaos-dist job:

    PYTHONPATH=src python scripts/chaos_dist.py
"""

import os
import shutil
import sys
import tempfile

from repro import obs
from repro.bench.harness import prepare
from repro.bench.parallel import (
    RunOptions,
    evaluate_many,
    last_scheduler_stats,
)
from repro.core import TracerConfig
from repro.robust.clausebus import load_bus_records
from repro.robust.faults import FaultPlan
from repro.robust.leases import load_lease_records, verify_lease_log

BENCHMARKS = (
    "tsp", "elevator", "hedc", "weblech", "antlr", "avrora", "lusearch",
)
ANALYSES = ("typestate", "escape", "typestate-interproc")
CONFIG = TracerConfig(k=5, max_iterations=30)
GROUP_SIZE = 4

#: Every task's first attempt raises at its 4th abstraction choice
#: (once — the retry succeeds), so rounds published before the fault
#: are importable by whichever worker retries.
SHARED_FAULTS = ["choose:raise:at=4,attempt=0"]
#: Worker 0 SIGKILLs itself at its 3rd choice; worker 1 hangs (alive,
#: no heartbeats) on its first claim; worker 2 is clean.
WORKER_FAULTS = (
    ("choose:kill:at=3,attempt=0",),
    ("scheduler.hang:corrupt:at=1",),
    None,
)


def record_key(record):
    """Everything semantic about a record except wall-clock."""
    return (
        record.query_id,
        record.status,
        record.abstraction,
        record.abstraction_cost,
        record.iterations,
        record.max_disjuncts,
        record.forward_runs,
        record.forward_cache_hits,
    )


def flatten(results):
    out = {}
    for name in BENCHMARKS:
        for analysis in ANALYSES:
            out[(name, analysis)] = results[name][analysis]
    return out


def count_events(events, name):
    return sum(
        1
        for entry in events
        if entry.get("type") == "event" and entry.get("name") == name
    )


def count_live_rounds(events):
    return sum(
        1
        for entry in events
        if entry.get("type") == "span_start"
        and entry.get("name") == "iteration"
    )


def run_chaos(instances, lease_path, clause_bus):
    sink = obs.MemorySink()
    with obs.tracing(sink):
        results = evaluate_many(
            instances,
            ANALYSES,
            CONFIG,
            jobs=3,
            options=RunOptions(
                scheduler="leases",
                group_size=GROUP_SIZE,
                heartbeat_interval=0.1,
                lease_ttl=1.0,
                lease_path=lease_path,
                clause_bus=clause_bus,
                certify=True,
                fault_plan=FaultPlan.from_specs(SHARED_FAULTS),
                worker_faults=WORKER_FAULTS,
            ),
        )
    return flatten(results), sink.events, last_scheduler_stats()


def compare_to_oracle(label, oracle, chaos):
    failures = 0
    for pair, expected in oracle.items():
        actual = chaos[pair]
        where = f"{label} {pair[0]}:{pair[1]}"
        if actual.failed_units:
            print(f"FAIL {where}: failed units {actual.failed_units}")
            failures += 1
            continue
        want = [record_key(r) for r in expected.records]
        got = [record_key(r) for r in actual.records]
        if want != got:
            print(f"FAIL {where}: records diverged from the serial oracle")
            failures += 1
        if expected.certificates != actual.certificates:
            print(f"FAIL {where}: certificates diverged from the oracle")
            failures += 1
    if not failures:
        total = sum(len(r.records) for r in oracle.values())
        print(f"ok   {label}: {total} records bit-identical to the oracle")
    return failures


def main() -> int:
    failures = 0
    instances = {name: prepare(name) for name in BENCHMARKS}
    workdir = tempfile.mkdtemp(prefix="chaos-dist-")
    try:
        # The oracle: same group decomposition, one worker, no faults,
        # no clause bus — the uninterrupted run every chaos run must
        # reproduce bit for bit.
        oracle = flatten(
            evaluate_many(
                instances,
                ANALYSES,
                CONFIG,
                jobs=1,
                options=RunOptions(
                    scheduler="leases",
                    group_size=GROUP_SIZE,
                    clause_bus=False,
                    certify=True,
                ),
            )
        )
        print(
            f"ok   oracle: {sum(len(r.records) for r in oracle.values())} "
            f"records across {len(oracle)} evaluations"
        )

        lease_on = os.path.join(workdir, "bus-on.leases")
        chaos_on, events_on, stats_on = run_chaos(
            instances, lease_on, clause_bus=True
        )
        failures += compare_to_oracle("chaos+bus", oracle, chaos_on)

        lease_off = os.path.join(workdir, "bus-off.leases")
        chaos_off, events_off, stats_off = run_chaos(
            instances, lease_off, clause_bus=False
        )
        failures += compare_to_oracle("chaos-no-bus", oracle, chaos_off)

        # The chaos actually happened: leases were stolen from the
        # killed worker (parent force-release) and expired under the
        # hung one (heartbeat timeout).
        for label, events, stats in (
            ("chaos+bus", events_on, stats_on),
            ("chaos-no-bus", events_off, stats_off),
        ):
            stolen = count_events(events, "lease_stolen")
            expired = count_events(events, "lease_expired")
            if stats.get("steals", 0) < 1 or stolen < 1:
                print(f"FAIL {label}: no lease was stolen (steals={stats})")
                failures += 1
            if stats.get("expiries", 0) < 1 or expired < 1:
                print(f"FAIL {label}: no lease expired (stats={stats})")
                failures += 1
            print(
                f"ok   {label}: steals={stats.get('steals')} "
                f"expiries={stats.get('expiries')} "
                f"claims={stats.get('claims')} "
                f"respawns={stats.get('respawns')}"
            )

        # Clause sharing pruned real work: published rounds were
        # imported by the retrying/stealing worker, and strictly fewer
        # synthesis rounds ran live than under the same faults with
        # the bus off.
        imported_on = count_events(events_on, "clause_imported")
        published_on = count_events(events_on, "clause_published")
        imported_off = count_events(events_off, "clause_imported")
        live_on = count_live_rounds(events_on)
        live_off = count_live_rounds(events_off)
        if imported_on < 1:
            print("FAIL chaos+bus: no clause_imported event fired")
            failures += 1
        if imported_off != 0:
            print(
                f"FAIL chaos-no-bus: clause_imported fired {imported_off}x "
                "with the bus disabled"
            )
            failures += 1
        if live_on >= live_off:
            print(
                f"FAIL clause bus did not prune live rounds: "
                f"{live_on} with bus vs {live_off} without"
            )
            failures += 1
        if not failures:
            print(
                f"ok   clause bus: published={published_on} "
                f"imported={imported_on}, live rounds {live_on} with bus "
                f"vs {live_off} without"
            )

        # Cross-worker evidence: at least one scope has bus rounds
        # published by a worker other than the one that durably
        # completed it (the killed worker's partial progress, replayed
        # by whoever stole the lease).
        publishers = {}
        for record in load_bus_records(lease_on + ".bus"):
            if record.get("type") == "round":
                publishers.setdefault(record["scope"], set()).add(
                    record.get("worker")
                )
        stolen_scopes = set()
        completer = {}
        for record in load_lease_records(lease_on):
            scope = ":".join(str(p) for p in record.get("task", []))
            if record.get("type") == "claim" and record.get("stolen_from"):
                stolen_scopes.add(scope)
            if record.get("type") == "complete":
                completer.setdefault(scope, record.get("worker"))
        shared = [
            scope
            for scope in stolen_scopes
            if scope in publishers and scope in completer
        ]
        if not shared:
            print(
                "FAIL chaos+bus: no stolen task had sibling-published "
                "rounds to import"
            )
            failures += 1
        else:
            print(
                f"ok   cross-worker: {len(shared)} stolen task(s) completed "
                f"with sibling-published rounds on the bus"
            )

        # The lease logs themselves audit clean.
        for label, path in (("bus-on", lease_on), ("bus-off", lease_off)):
            problems, summary = verify_lease_log(path)
            if problems:
                print(f"FAIL lease log {label}: {problems}")
                failures += 1
            else:
                counters = summary.get("counters", {})
                print(
                    f"ok   lease log {label}: verified "
                    f"({counters.get('claims', 0)} claims, "
                    f"{counters.get('completions', 0)} completions, "
                    f"{counters.get('duplicates', 0)} duplicates)"
                )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    if failures:
        print(f"{failures} chaos-dist assertion(s) failed")
        return 1
    print("all chaos-dist assertions held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
