"""Chaos check for the hardened daemon: faults on, answers unchanged.

Starts a ``repro serve`` daemon with one supervised worker and two
injected faults — the worker's first solve is delayed and the parent
SIGKILLs it mid-solve — plus a client-side transport flake, then
asserts the resilience contract (docs/ROBUSTNESS.md, "The daemon's
fault sites"):

1. the cold pass completes every benchmark despite the mid-solve
   worker kill and the dropped connection: the client retried, the
   supervisor respawned, and the daemon's shed/respawn telemetry
   recorded both;
2. ``repro store verify`` is clean after the faulted pass and
   ``repro store compact`` rewrites the store without losing a key
   (SIGKILL-safe by construction; the kill matrix itself lives in
   tests/serve/test_store_lifecycle.py);
3. the warm pass against the *compacted* store answers every unit
   from the replay tier with verdicts identical to the cold pass;
4. the served verdicts match a one-shot in-process evaluation of the
   same workloads — chaos must never change an answer.

Exit code 0 on success, 1 with a diagnostic on any violation::

    PYTHONPATH=src python scripts/chaos_serve.py [--analysis typestate]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.bench.suite import BENCHMARK_NAMES  # noqa: E402
from repro.robust import faults  # noqa: E402
from repro.serve.client import ServeClient, ServeError  # noqa: E402

MAX_ITERATIONS = 30

# The validated mid-solve kill recipe: the worker's first attempt-0
# solve sleeps half a second (each worker process fires this once),
# and the parent kills the worker 50ms into its first pooled call —
# squarely inside that sleep.  The client's retry (attempt 1) lands
# on a freshly-respawned worker with no delay.
DAEMON_FAULTS = [
    "serve.worker:delay:delay=0.5,attempt=0,times=1",
    "serve.worker_kill:corrupt:at=1,times=1",
]
# Client-side: the third connection attempt of the cold pass dies
# with ECONNREFUSED-style trouble; the retry must recover it.
CLIENT_FAULTS = ["serve.transport:raise:error=connection,at=3,times=1"]


def start_daemon(socket_path: str, store_path: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    argv = [
        sys.executable, "-m", "repro", "serve",
        "--socket", socket_path,
        "--store", store_path,
        "--workers", "1",
        "--max-iterations", str(MAX_ITERATIONS),
    ]
    for spec in DAEMON_FAULTS:
        argv.extend(["--inject", spec])
    daemon = subprocess.Popen(
        argv, env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if daemon.poll() is not None:
            stderr = daemon.stderr.read().decode()
            raise RuntimeError(f"daemon died on startup:\n{stderr}")
        if os.path.exists(socket_path):
            try:
                ServeClient(socket_path, timeout=5).ping()
                return daemon
            except ServeError:
                pass
        time.sleep(0.1)
    daemon.kill()
    raise RuntimeError("daemon did not come up within 30s")


def submit_pass(client: ServeClient, analysis: str):
    verdicts = {}
    modes = []
    hits = 0
    for name in BENCHMARK_NAMES:
        reply = client.solve_benchmark(name, analysis)
        modes.extend(reply["modes"])
        hits += reply["store_hits"]
        for entry in reply["results"]:
            verdicts[f"{name}:{entry['query']}"] = entry["verdict"]
    return verdicts, modes, hits


def one_shot_verdicts(analysis: str):
    from repro.bench.harness import evaluate_benchmark, prepare
    from repro.core.tracer import TracerConfig

    config = TracerConfig(k=5, max_iterations=MAX_ITERATIONS)
    verdicts = {}
    for name in BENCHMARK_NAMES:
        result = evaluate_benchmark(prepare(name), analysis, config)
        for record in result.records:
            verdicts[f"{name}:{record.query_id}"] = record.status.value
    return verdicts


def run_cli(args, what, failures):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=env, capture_output=True, text=True,
    )
    if proc.returncode != 0:
        failures.append(
            f"{what} exited {proc.returncode}: {proc.stderr.strip()[:300]}"
        )
        return ""
    return proc.stdout


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--analysis", default="typestate")
    args = parser.parse_args(argv)

    workdir = tempfile.mkdtemp(prefix="repro-chaos-serve-")
    socket_path = os.path.join(workdir, "serve.sock")
    store_path = os.path.join(workdir, "store.jsonl")
    failures = []

    daemon = start_daemon(socket_path, store_path)
    client = ServeClient(socket_path, timeout=120, retries=3)
    client_plan = faults.FaultPlan.from_specs(CLIENT_FAULTS)
    try:
        # -- cold pass under fire ------------------------------------------
        with faults.fault_scope(client_plan):
            cold, cold_modes, cold_hits = submit_pass(client, args.analysis)
        stats = client.stats()
        robustness = stats["telemetry"]["robustness"]
        print(f"cold pass: {len(cold)} queries, "
              f"modes={sorted(set(cold_modes))}, hits={cold_hits}")
        print(f"client: attempts={client.attempts_made} "
              f"retries={client.retries_made}")
        print(f"daemon: respawns={robustness['respawns']} "
              f"shed={robustness['shed']}")
        if client.retries_made < 2:
            failures.append(
                f"expected >=2 client retries (worker kill + transport "
                f"flake), saw {client.retries_made}"
            )
        if robustness["respawns"] < 1:
            failures.append("the supervisor never respawned a worker")
        if set(cold_modes) != {"cold"}:
            failures.append(
                f"cold pass modes {sorted(set(cold_modes))}, "
                "expected all 'cold'"
            )

        # -- verify + compact between passes -------------------------------
        verify_out = run_cli(
            ["store", "verify", store_path], "repro store verify", failures
        )
        if verify_out:
            summary = json.loads(verify_out)
            print(f"store verify: {summary}")
            if summary["entries"] < 1:
                failures.append("store is empty after the cold pass")
        compact_out = run_cli(
            ["store", "compact", store_path], "repro store compact", failures
        )
        if compact_out:
            print(f"store compact: {compact_out.strip()}")

        # -- warm pass against the compacted store -------------------------
        warm_client = ServeClient(socket_path, timeout=120, retries=3)
        warm, warm_modes, warm_hits = submit_pass(warm_client, args.analysis)
        print(f"warm pass: modes={sorted(set(warm_modes))}, "
              f"hits={warm_hits}")
        if set(warm_modes) != {"replay"}:
            failures.append(
                f"warm pass modes {sorted(set(warm_modes))}, expected all "
                "'replay' — compaction lost warm state"
            )
        if warm_hits == 0:
            failures.append("warm pass had zero store hits after compaction")
        if warm != cold:
            diff = {
                k for k in set(cold) | set(warm)
                if cold.get(k) != warm.get(k)
            }
            failures.append(
                f"warm verdicts differ from cold: {sorted(diff)[:5]}"
            )
    finally:
        try:
            client.shutdown()
            daemon.wait(timeout=15)
        except (ServeError, subprocess.TimeoutExpired):
            daemon.kill()

    baseline = one_shot_verdicts(args.analysis)
    if cold != baseline:
        diff = {
            k for k in set(cold) | set(baseline)
            if cold.get(k) != baseline.get(k)
        }
        failures.append(
            f"chaos verdicts differ from one-shot oracle: {sorted(diff)[:5]}"
        )
    else:
        print("chaos verdicts match one-shot in-process evaluation")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("chaos serve OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
